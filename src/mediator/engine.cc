#include "mediator/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "source/metadata_tagger.h"
#include "xml/parser.h"

namespace piye {
namespace mediator {

namespace {

constexpr std::chrono::microseconds kRetryBackoffBase{200};
constexpr std::chrono::microseconds kRetryBackoffCap{5000};

/// A deadline of "none" is the steady clock's far future.
std::chrono::steady_clock::time_point ComputeDeadline(
    std::chrono::steady_clock::time_point start, uint64_t deadline_ms) {
  if (deadline_ms == 0) return std::chrono::steady_clock::time_point::max();
  return start + std::chrono::milliseconds(deadline_ms);
}

}  // namespace

/// Shared between the waiting Execute call and a pool task. The task owns a
/// shared_ptr too, so a fragment abandoned on deadline keeps valid state
/// until the task finishes, after which it is released.
struct MediationEngine::FragmentOutcome {
  source::PiqlQuery fragment;
  Status status = Status::Internal("fragment never ran");
  source::RemoteSource::FragmentResult result;
};

MediationEngine::MediationEngine(Options options)
    : options_(options),
      control_(options.max_combined_loss, options.max_interval_loss) {
  if (options_.worker_threads > 0) {
    executor_ = std::make_unique<Executor>(options_.worker_threads);
  }
}

Status MediationEngine::RegisterSource(source::RemoteSource* src) {
  if (src == nullptr) {
    return Status::InvalidArgument("RegisterSource: source is null");
  }
  if (schema_ready_) {
    return Status::InvalidArgument(
        "RegisterSource after GenerateMediatedSchema: the mediated schema is "
        "frozen; build a new engine to add source '" + src->owner() + "'");
  }
  for (const auto* existing : sources_) {
    if (existing->owner() == src->owner()) {
      return Status::AlreadyExists("a source owned by '" + src->owner() +
                                   "' is already registered");
    }
  }
  sources_.push_back(src);
  return Status::OK();
}

std::vector<std::string> MediationEngine::SourceOwners() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto* s : sources_) out.push_back(s->owner());
  return out;
}

Status MediationEngine::GenerateMediatedSchema(const std::string& shared_key) {
  std::vector<match::ColumnSketch> sketches;
  for (const auto* src : sources_) {
    PIYE_ASSIGN_OR_RETURN(std::vector<match::ColumnSketch> s,
                          src->ExportSketches(shared_key));
    sketches.insert(sketches.end(), s.begin(), s.end());
  }
  match::SchemaMatcher::Options match_options;
  match::MediatedSchemaGenerator generator(
      match::SchemaMatcher(match_options, source::DefaultClinicalNameMatcher()));
  PIYE_ASSIGN_OR_RETURN(schema_, generator.Generate(sketches));
  schema_ready_ = true;
  return Status::OK();
}

void MediationEngine::RunFragmentWithRetry(
    const source::RemoteSource* src, const source::PiqlQuery& fragment,
    const QueryOptions& options, std::chrono::steady_clock::time_point deadline,
    trace::MetricsRegistry* metrics, FragmentOutcome* outcome) {
  trace::ScopedSpan span("source-fragment", nullptr, metrics);
  for (uint32_t attempt = 0;; ++attempt) {
    metrics->AddCounter("engine.fragment_attempts");
    auto result = src->ExecuteFragment(fragment);
    if (result.ok()) {
      outcome->status = Status::OK();
      outcome->result = std::move(result).value();
      metrics->AddCounter("engine.fragments_ok");
      return;
    }
    outcome->status = result.status();
    // Only transient faults are worth retrying; a privacy refusal or a
    // malformed fragment will refuse identically every time.
    if (!result.status().IsUnavailable() || attempt >= options.max_retries) {
      metrics->AddCounter("engine.fragments_failed");
      return;
    }
    const auto backoff =
        std::min(kRetryBackoffCap, kRetryBackoffBase * (1u << std::min(attempt, 5u)));
    if (std::chrono::steady_clock::now() + backoff >= deadline) {
      metrics->AddCounter("engine.fragments_failed");
      return;  // the waiter is about to give up on us anyway
    }
    metrics->AddCounter("engine.fragment_retries");
    std::this_thread::sleep_for(backoff);
  }
}

Result<MediationEngine::IntegratedResult> MediationEngine::Execute(
    const source::PiqlQuery& query, const QueryOptions& options) {
  if (!schema_ready_) {
    return Status::Internal("GenerateMediatedSchema must run before Execute");
  }
  metrics_.AddCounter("engine.queries");

  // The transport-authenticated requester overrides the query's self-claim.
  const source::PiqlQuery* effective_query = &query;
  source::PiqlQuery reidentified;
  if (!options.requester.empty() && options.requester != query.requester) {
    reidentified = query;
    reidentified.requester = options.requester;
    effective_query = &reidentified;
  }

  IntegratedResult out;
  trace::Trace query_trace;
  const bool use_warehouse = options_.enable_warehouse && options.allow_warehouse;

  // Warehouse lookup (hybrid virtual/materialized querying).
  const std::string fingerprint =
      xml::Serialize(*effective_query->ToXml(), /*indent=*/-1);
  {
    trace::ScopedSpan span("warehouse-lookup", &query_trace, &metrics_);
    if (use_warehouse) {
      auto cached = warehouse_.Get(fingerprint, epoch(), options_.warehouse_max_age);
      if (cached.has_value()) {
        span.Stop();
        out.table = std::move(*cached);
        out.from_warehouse = true;
        out.timings = query_trace.timings();
        metrics_.AddCounter("engine.warehouse_hits");
        return out;
      }
    }
  }

  // Sequence-level budget for the requester.
  if (history_.CumulativeLoss(effective_query->requester) >=
      options_.max_cumulative_loss) {
    return Status::PrivacyViolation("requester '" + effective_query->requester +
                                    "' has exhausted the cumulative loss budget");
  }

  // Fragmentation.
  QueryFragmenter fragmenter(&schema_, source::DefaultClinicalNameMatcher());
  QueryFragmenter::FragmentationResult fragments;
  {
    trace::ScopedSpan span("fragment", &query_trace, &metrics_);
    PIYE_ASSIGN_OR_RETURN(fragments,
                          fragmenter.Fragment(*effective_query, SourceOwners()));
  }
  out.sources_skipped = fragments.skipped;

  // Per-source execution (each runs its full Fig. 2(a) pipeline), fanned out
  // across the pool when one exists. Outcomes are indexed by fragment order,
  // so integration below is deterministic however the tasks interleave.
  struct Dispatch {
    std::string owner;
    std::shared_ptr<FragmentOutcome> outcome;
    std::future<void> done;  // valid only in parallel mode
  };
  std::vector<Dispatch> dispatches;
  {
    trace::ScopedSpan span("source-execution", &query_trace, &metrics_);
    const auto fanout_start = std::chrono::steady_clock::now();
    const auto deadline = ComputeDeadline(fanout_start, options.deadline_ms);
    for (const auto& frag : fragments.fragments) {
      const source::RemoteSource* src = nullptr;
      for (const auto* s : sources_) {
        if (s->owner() == frag.source) {
          src = s;
          break;
        }
      }
      if (src == nullptr) continue;
      Dispatch d;
      d.owner = frag.source;
      d.outcome = std::make_shared<FragmentOutcome>();
      d.outcome->fragment = frag.query;
      if (executor_ != nullptr) {
        auto outcome = d.outcome;  // keep alive even if the waiter gives up
        d.done = executor_->Submit(
            [src, outcome, options, deadline, metrics = &metrics_] {
              RunFragmentWithRetry(src, outcome->fragment, options, deadline,
                                   metrics, outcome.get());
            });
      } else {
        RunFragmentWithRetry(src, d.outcome->fragment, options, deadline,
                             &metrics_, d.outcome.get());
      }
      dispatches.push_back(std::move(d));
    }

    for (auto& d : dispatches) {
      if (!d.done.valid()) continue;  // serial mode: already ran in-line
      if (options.deadline_ms == 0) {
        d.done.wait();
      } else if (d.done.wait_until(deadline) != std::future_status::ready) {
        // Abandon the fragment: the task still runs to completion on its
        // pool thread (it owns a shared_ptr to the outcome), but this query
        // proceeds without it.
        metrics_.AddCounter("engine.fragments_deadline_exceeded");
        d.outcome = nullptr;
        out.sources_skipped[d.owner] =
            Status::DeadlineExceeded("per-source deadline of " +
                                     std::to_string(options.deadline_ms) +
                                     " ms exceeded")
                .ToString();
      }
    }
  }

  struct Answer {
    std::string owner;
    source::RemoteSource::FragmentResult fragment;
  };
  std::vector<Answer> answers;
  size_t transport_skips = 0;  // unavailable / past-deadline, not refusals
  for (auto& d : dispatches) {
    if (d.outcome == nullptr) {  // timed out above
      ++transport_skips;
      continue;
    }
    if (!d.outcome->status.ok()) {
      if (d.outcome->status.IsPrivacyViolation()) {
        Logger::Info("mediator", "source '" + d.owner + "' refused: " +
                                     d.outcome->status.message());
      }
      if (d.outcome->status.IsUnavailable() ||
          d.outcome->status.IsDeadlineExceeded()) {
        ++transport_skips;
      }
      out.sources_skipped[d.owner] = d.outcome->status.ToString();
      continue;
    }
    answers.push_back({d.owner, std::move(d.outcome->result)});
  }
  auto skip_detail = [&out] {
    std::string detail;
    for (const auto& [owner, reason] : out.sources_skipped) {
      detail += " [" + owner + ": " + reason + "]";
    }
    return detail;
  };
  if (answers.empty()) {
    // Distinguish "everyone refused on privacy grounds" (a verdict) from
    // "everyone was down or too slow" (a transport failure, retryable).
    if (!out.sources_skipped.empty() &&
        transport_skips == out.sources_skipped.size()) {
      return Status::Unavailable(
          "no source answered: every relevant source was unavailable or past "
          "its deadline:" + skip_detail());
    }
    return Status::PrivacyViolation(
        "no source could serve the query within its privacy constraints");
  }
  if (options.min_sources > 1 && answers.size() < options.min_sources) {
    std::string msg = "quorum not met: " + std::to_string(answers.size()) +
                      " of the required " + std::to_string(options.min_sources) +
                      " sources answered";
    const std::string detail = skip_detail();
    if (!detail.empty()) msg += ";" + detail;
    return Status::Unavailable(msg);
  }

  // Privacy control: greedily suppress the highest-loss source results until
  // the combined loss passes (the violating source "is notified" — here,
  // recorded in sources_suppressed).
  double combined = 0.0;
  {
    trace::ScopedSpan span("privacy-control", &query_trace, &metrics_);
    std::vector<const xml::XmlNode*> tagged;
    for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
    for (;;) {
      auto check = control_.CheckIntegratedResults(tagged);
      if (check.ok()) {
        combined = *check;
        break;
      }
      if (answers.size() <= 1) {
        HistoryEntry entry;
        entry.requester = effective_query->requester;
        entry.purpose = effective_query->purpose;
        entry.query_text = fingerprint;
        entry.released = false;
        history_.Record(std::move(entry));
        return check.status();
      }
      // Drop the answer with the highest tagged loss.
      size_t worst = 0;
      double worst_loss = -1.0;
      for (size_t i = 0; i < answers.size(); ++i) {
        const double l =
            source::MetadataTagger::ReadPrivacyLoss(*answers[i].fragment.xml);
        if (l > worst_loss) {
          worst_loss = l;
          worst = i;
        }
      }
      // The paper: violating results are excluded "and the remote source(s)
      // is notified about the violation" — here, the notification channel is
      // the log plus the sources_suppressed report.
      Logger::Warn("mediator", "privacy control suppressed results of '" +
                                   answers[worst].owner + "' for requester '" +
                                   effective_query->requester + "': " +
                                   check.status().message());
      out.sources_suppressed.push_back(answers[worst].owner);
      answers.erase(answers.begin() + static_cast<ptrdiff_t>(worst));
      tagged.clear();
      for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
    }
  }

  // Integration + private dedup. Dedup keys are requester-facing names, so
  // resolve them loosely to mediated attribute names first.
  {
    trace::ScopedSpan span("integrate", &query_trace, &metrics_);
    std::vector<std::string> resolved_keys;
    for (const auto& key : options.dedup_keys) {
      auto attr = fragmenter.Resolve(key);
      resolved_keys.push_back(attr.ok() ? (*attr)->name : key);
    }
    ResultIntegrator integrator(&schema_);
    std::vector<ResultIntegrator::SourceResult> source_results;
    for (const auto& a : answers) {
      PIYE_ASSIGN_OR_RETURN(ResultIntegrator::SourceResult r,
                            integrator.FromTaggedXml(*a.fragment.xml));
      source_results.push_back(std::move(r));
      out.sources_answered.push_back(a.owner);
    }
    PIYE_ASSIGN_OR_RETURN(out.table,
                          integrator.Integrate(source_results, resolved_keys));
    out.combined_privacy_loss = combined;
  }

  // History + warehouse.
  {
    trace::ScopedSpan span("record", &query_trace, &metrics_);
    HistoryEntry entry;
    entry.requester = effective_query->requester;
    entry.purpose = effective_query->purpose;
    entry.query_text = fingerprint;
    entry.sources_answered = out.sources_answered;
    entry.sources_refused = out.sources_suppressed;
    entry.aggregated_privacy_loss = combined;
    entry.released = true;
    history_.Record(std::move(entry));
    if (use_warehouse) {
      warehouse_.Put(fingerprint, out.table, epoch());
    }
  }
  out.timings = query_trace.timings();
  return out;
}

}  // namespace mediator
}  // namespace piye

#ifndef PIYE_MEDIATOR_FRAGMENTER_H_
#define PIYE_MEDIATOR_FRAGMENTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "match/mediated_schema.h"
#include "source/piql.h"
#include "xml/loose_path.h"

namespace piye {
namespace mediator {

/// The Query Fragmenter of Figure 2(b): parses the requester's PIQL query
/// against the (possibly partial) mediated schema and emits one fragment per
/// relevant source, with mediated attribute names translated to that
/// source's own column names. Sources that cannot satisfy the query's
/// mandatory parts (WHERE, aggregate) are skipped with a recorded reason —
/// "sending queries to irrelevant sources affects adversely the efficiency
/// of the integration process".
class QueryFragmenter {
 public:
  struct Fragment {
    std::string source;
    source::PiqlQuery query;
  };

  struct FragmentationResult {
    std::vector<Fragment> fragments;
    /// source -> reason it was skipped.
    std::map<std::string, std::string> skipped;
  };

  QueryFragmenter(const match::MediatedSchema* schema,
                  xml::LooseNameMatcher name_matcher, double threshold = 0.7)
      : schema_(schema), names_(std::move(name_matcher)), threshold_(threshold) {}

  /// `sources` lists the owners registered with the engine.
  Result<FragmentationResult> Fragment(const source::PiqlQuery& query,
                                       const std::vector<std::string>& sources) const;

  /// Resolves a (possibly loosely named) query attribute to a mediated
  /// attribute, or error.
  Result<const match::MediatedAttribute*> Resolve(const std::string& attribute) const;

 private:
  const match::MediatedSchema* schema_;
  xml::LooseNameMatcher names_;
  double threshold_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_FRAGMENTER_H_

#include "mediator/privacy_control.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/strings.h"
#include "source/metadata_tagger.h"

namespace piye {
namespace mediator {

double PrivacyControl::CombineLosses(const std::vector<double>& losses) {
  double keep = 1.0;
  for (double l : losses) keep *= 1.0 - l;
  return 1.0 - keep;
}

Result<double> PrivacyControl::CheckIntegratedResults(
    const std::vector<const xml::XmlNode*>& tagged_results) const {
  // Per-data-item accounting: for every *protected* column (some source set
  // a budget below 1 for it), combine the per-source losses and verify the
  // combination still respects the tightest budget. Columns no policy
  // constrains (budget 1.0 everywhere) carry no compounding risk.
  struct ColumnAccount {
    std::vector<double> losses;
    double tightest_budget = 1.0;
    std::string tightest_owner;
  };
  std::map<std::string, ColumnAccount> accounts;
  bool any_column_metadata = false;
  for (const xml::XmlNode* r : tagged_results) {
    const std::string owner = source::MetadataTagger::ReadOwner(*r);
    const xml::XmlNode* schema = r->FirstChild("schema");
    if (schema == nullptr) continue;
    for (const xml::XmlNode* col : schema->Children("column")) {
      const std::string* name = col->GetAttr("name");
      const std::string* loss = col->GetAttr("loss");
      if (name == nullptr || loss == nullptr) continue;
      any_column_metadata = true;
      ColumnAccount& account = accounts[*name];
      account.losses.push_back(std::strtod(loss->c_str(), nullptr));
      const std::string* budget = col->GetAttr("budget");
      const double b = budget != nullptr ? std::strtod(budget->c_str(), nullptr) : 1.0;
      if (b < account.tightest_budget) {
        account.tightest_budget = b;
        account.tightest_owner = owner;
      }
    }
  }
  if (!any_column_metadata) {
    // Hand-tagged results without schema columns: treat each result's
    // root-level loss/budget as a single pseudo-item.
    ColumnAccount& account = accounts["_result"];
    for (const xml::XmlNode* r : tagged_results) {
      account.losses.push_back(source::MetadataTagger::ReadPrivacyLoss(*r));
      const double b = source::MetadataTagger::ReadLossBudget(*r);
      if (b < account.tightest_budget) {
        account.tightest_budget = b;
        account.tightest_owner = source::MetadataTagger::ReadOwner(*r);
      }
    }
  }
  double overall = 0.0;
  for (const auto& [name, account] : accounts) {
    const double combined = CombineLosses(account.losses);
    if (account.tightest_budget < 1.0 && combined > account.tightest_budget) {
      return Status::PrivacyViolation(strings::Format(
          "combined privacy loss %.3f of item '%s' exceeds source '%s' budget "
          "%.3f — the per-source approval does not survive integration",
          combined, name.c_str(), account.tightest_owner.c_str(),
          account.tightest_budget));
    }
    if (account.tightest_budget < 1.0) overall = std::max(overall, combined);
  }
  if (overall > max_combined_loss_) {
    return Status::PrivacyViolation(strings::Format(
        "combined privacy loss %.3f exceeds the engine maximum %.3f", overall,
        max_combined_loss_));
  }
  return overall;
}

size_t PrivacyControl::RegisterSensitiveCell(const std::string& name, double lo,
                                             double hi, double true_value) {
  std::lock_guard<std::mutex> lock(mu_);
  return auditor_.AddSensitiveValue(name, lo, hi, true_value);
}

Result<double> PrivacyControl::ApproveMeanDisclosure(const std::vector<size_t>& cells,
                                                     double tol) {
  std::lock_guard<std::mutex> lock(mu_);
  return auditor_.DiscloseMean(cells, tol);
}

Result<double> PrivacyControl::ApproveStdDevDisclosure(
    const std::vector<size_t>& cells, double tol) {
  std::lock_guard<std::mutex> lock(mu_);
  return auditor_.DiscloseStdDev(cells, tol);
}

}  // namespace mediator
}  // namespace piye

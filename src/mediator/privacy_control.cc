#include "mediator/privacy_control.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/strings.h"
#include "source/metadata_tagger.h"

namespace piye {
namespace mediator {

double PrivacyControl::CombineLosses(const std::vector<double>& losses) {
  double keep = 1.0;
  for (double l : losses) keep *= 1.0 - l;
  return 1.0 - keep;
}

Result<double> PrivacyControl::CheckIntegratedResults(
    const std::vector<const xml::XmlNode*>& tagged_results) const {
  // Per-data-item accounting: for every *protected* column (some source set
  // a budget below 1 for it), combine the per-source losses and verify the
  // combination still respects the tightest budget. Columns no policy
  // constrains (budget 1.0 everywhere) carry no compounding risk.
  struct ColumnAccount {
    std::vector<double> losses;
    double tightest_budget = 1.0;
    std::string tightest_owner;
  };
  std::map<std::string, ColumnAccount> accounts;
  bool any_column_metadata = false;
  for (const xml::XmlNode* r : tagged_results) {
    const std::string owner = source::MetadataTagger::ReadOwner(*r);
    const xml::XmlNode* schema = r->FirstChild("schema");
    if (schema == nullptr) continue;
    for (const xml::XmlNode* col : schema->Children("column")) {
      const std::string* name = col->GetAttr("name");
      const std::string* loss = col->GetAttr("loss");
      if (name == nullptr || loss == nullptr) continue;
      any_column_metadata = true;
      ColumnAccount& account = accounts[*name];
      account.losses.push_back(std::strtod(loss->c_str(), nullptr));
      const std::string* budget = col->GetAttr("budget");
      const double b = budget != nullptr ? std::strtod(budget->c_str(), nullptr) : 1.0;
      if (b < account.tightest_budget) {
        account.tightest_budget = b;
        account.tightest_owner = owner;
      }
    }
  }
  if (!any_column_metadata) {
    // Hand-tagged results without schema columns: treat each result's
    // root-level loss/budget as a single pseudo-item.
    ColumnAccount& account = accounts["_result"];
    for (const xml::XmlNode* r : tagged_results) {
      account.losses.push_back(source::MetadataTagger::ReadPrivacyLoss(*r));
      const double b = source::MetadataTagger::ReadLossBudget(*r);
      if (b < account.tightest_budget) {
        account.tightest_budget = b;
        account.tightest_owner = source::MetadataTagger::ReadOwner(*r);
      }
    }
  }
  double overall = 0.0;
  for (const auto& [name, account] : accounts) {
    const double combined = CombineLosses(account.losses);
    if (account.tightest_budget < 1.0 && combined > account.tightest_budget) {
      return Status::PrivacyViolation(strings::Format(
          "combined privacy loss %.3f of item '%s' exceeds source '%s' budget "
          "%.3f — the per-source approval does not survive integration",
          combined, name.c_str(), account.tightest_owner.c_str(),
          account.tightest_budget));
    }
    if (account.tightest_budget < 1.0) overall = std::max(overall, combined);
  }
  if (overall > max_combined_loss_) {
    return Status::PrivacyViolation(strings::Format(
        "combined privacy loss %.3f exceeds the engine maximum %.3f", overall,
        max_combined_loss_));
  }
  return overall;
}

size_t PrivacyControl::RegisterSensitiveCell(const std::string& name, double lo,
                                             double hi, double true_value) {
  size_t id = 0;
  Journal journal;
  JournalEvent event;
  event.kind = JournalEvent::Kind::kCell;
  {
    MutexLock lock(mu_);
    id = auditor_.AddSensitiveValue(name, lo, hi, true_value);
    cells_.push_back({name, lo, hi, true_value});
    event.cell = cells_.back();
    journal = journal_;
  }
  if (journal) {
    const Status status = journal(event);
    if (!status.ok()) {
      // Registration discloses nothing, so there is no value to withhold;
      // the journal hook is responsible for failing the engine closed.
      Logger::Warn("mediator", "sensitive-cell journal failed: " + status.ToString());
    }
  }
  return id;
}

Result<double> PrivacyControl::Approve(uint16_t kind,
                                       const std::vector<size_t>& cells,
                                       double tol) {
  double value = 0.0;
  Journal journal;
  JournalEvent event;
  event.kind = JournalEvent::Kind::kDisclosure;
  {
    MutexLock lock(mu_);
    auto result = kind == DisclosureSpec::kMean
                      ? auditor_.DiscloseMean(cells, tol)
                      : auditor_.DiscloseStdDev(cells, tol);
    if (!result.ok()) return result;
    value = *result;
    DisclosureSpec spec;
    spec.kind = kind;
    spec.cells.assign(cells.begin(), cells.end());
    spec.tol = tol;
    disclosures_.push_back(spec);
    event.disclosure = std::move(spec);
    journal = journal_;
  }
  // Journaled outside mu_ (see set_journal). The auditor keeps the committed
  // — stricter — constraint even when journaling fails and the value is
  // withheld.
  if (journal) PIYE_RETURN_NOT_OK(journal(event));
  return value;
}

Result<double> PrivacyControl::ApproveMeanDisclosure(const std::vector<size_t>& cells,
                                                     double tol) {
  return Approve(DisclosureSpec::kMean, cells, tol);
}

Result<double> PrivacyControl::ApproveStdDevDisclosure(
    const std::vector<size_t>& cells, double tol) {
  return Approve(DisclosureSpec::kStdDev, cells, tol);
}

void PrivacyControl::set_journal(Journal journal) {
  MutexLock lock(mu_);
  journal_ = std::move(journal);
}

Status PrivacyControl::Replay(const std::vector<SensitiveCellSpec>& cells,
                              const std::vector<DisclosureSpec>& disclosures) {
  MutexLock lock(mu_);
  if (!cells_.empty() || !disclosures_.empty()) {
    return Status::InvalidArgument(
        "PrivacyControl::Replay requires pristine audit state");
  }
  for (const auto& cell : cells) {
    auditor_.AddSensitiveValue(cell.name, cell.lo, cell.hi, cell.true_value);
    cells_.push_back(cell);
  }
  for (const auto& d : disclosures) {
    std::vector<size_t> ids(d.cells.begin(), d.cells.end());
    auto result = d.kind == DisclosureSpec::kMean
                      ? auditor_.DiscloseMean(ids, d.tol)
                      : auditor_.DiscloseStdDev(ids, d.tol);
    if (!result.ok()) {
      // A disclosure that committed before the crash is deterministic, so
      // this should not happen; if it does, skipping it leaves the auditor
      // stricter than pre-crash — conservative, so recovery proceeds.
      Logger::Warn("mediator", "replayed disclosure refused (keeping stricter "
                               "state): " + result.status().ToString());
      continue;
    }
    disclosures_.push_back(d);
  }
  return Status::OK();
}

size_t PrivacyControl::disclosures_committed() const {
  MutexLock lock(mu_);
  return auditor_.disclosures_committed();
}

size_t PrivacyControl::disclosures_refused() const {
  MutexLock lock(mu_);
  return auditor_.disclosures_refused();
}

Result<std::vector<double>> PrivacyControl::CurrentLosses() const {
  MutexLock lock(mu_);
  return auditor_.CurrentLosses();
}

std::vector<PrivacyControl::SensitiveCellSpec> PrivacyControl::SnapshotCells() const {
  MutexLock lock(mu_);
  return cells_;
}

std::vector<PrivacyControl::DisclosureSpec> PrivacyControl::SnapshotDisclosures()
    const {
  MutexLock lock(mu_);
  return disclosures_;
}

}  // namespace mediator
}  // namespace piye

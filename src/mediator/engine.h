#ifndef PIYE_MEDIATOR_ENGINE_H_
#define PIYE_MEDIATOR_ENGINE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/executor.h"
#include "common/sync.h"
#include "common/result.h"
#include "common/trace.h"
#include "match/mediated_schema.h"
#include "mediator/admission.h"
#include "mediator/circuit_breaker.h"
#include "mediator/fragmenter.h"
#include "mediator/history.h"
#include "mediator/persistence.h"
#include "mediator/privacy_control.h"
#include "mediator/query_options.h"
#include "mediator/result_integrator.h"
#include "mediator/warehouse.h"
#include "persist/floor_index.h"
#include "persist/snapshotter.h"
#include "persist/state_log.h"
#include "persist/wal.h"
#include "source/federated_source.h"

namespace piye {
namespace mediator {

/// The Privacy Preserving Mediation Engine of Figure 2(b), wired end to end:
/// mediated-schema generation over source sketches, query fragmentation,
/// per-source execution (each source runs its own Figure 2(a) pipeline),
/// result integration with private dedup, privacy control over the
/// integrated answer, history logging, and hybrid warehousing.
///
/// Concurrency model: sources are autonomous remote services, so Execute
/// fans fragments out across them on a fixed-size thread pool with
/// per-source deadlines, bounded retry for transient failures, and graceful
/// degradation — a slow or failing source is reported in `sources_skipped`,
/// it does not fail the query (unless a `QueryOptions::min_sources` quorum
/// demands it). Per-source circuit breakers (when enabled) shed a
/// persistently failing source outright instead of burning retry and
/// deadline budget on every query, with half-open probing to readmit it.
/// Identical concurrent queries (same fingerprint, requester, and options)
/// are single-flighted: one caller leads the federated execution and the
/// rest share its privacy-checked result — one source fan-out, one history
/// entry, one budget charge for the burst (different requesters never
/// coalesce, so per-requester accounting is untouched).
///
/// Overload model: every Execute passes through an admission pipeline
/// *before* single-flight, the warehouse, history, budget, or any breaker —
/// a pre-expired deadline is rejected with kDeadlineExceeded, a requester
/// outrunning its token bucket or arriving at a saturated queue is shed
/// with kResourceExhausted and a retry-after hint, and queries beyond
/// `Options::admission.max_inflight` wait in a weighted fair-share,
/// deadline-aware queue (see mediator/admission.h). Shed queries charge
/// zero privacy budget and never count against a source's circuit breaker.
/// `QueryOptions::cancel` threads a cooperative CancelToken through the
/// executor, the retry/backoff loop, and `RemoteSource::ExecuteFragment`,
/// so an expired whole-query deadline or a caller cancellation stops
/// in-flight fragments instead of letting them run to completion.
/// Execute itself is safe for concurrent callers: the shared stores
/// (history, warehouse, privacy control, metrics) are internally locked,
/// the mediated schema is immutable after initialization, and
/// `RemoteSource::ExecuteFragment` is safe for concurrent calls. Results
/// are deterministic regardless of thread count or completion order.
///
/// Durability model (opt-in via `Recover`): the query history, per-requester
/// cumulative privacy loss, inference-audit state, warehouse
/// materializations, and the logical epoch are the engine's *trust anchor* —
/// the sequence-level Privacy Control of Section 4 is only as strong as this
/// state's survival across process death. With a persist directory attached,
/// every release is appended to a checksummed write-ahead log and fsynced
/// *before* the answer leaves the engine (fail-closed ordering: an answer
/// whose disclosure cannot be made durable is withheld), periodic snapshots
/// bound recovery time, and `Recover` reconstructs the state conservatively:
/// a torn or corrupt WAL tail is discarded with its budget floors held at
/// the last durable values — a crash can never reset a snooper's budget.
/// If the durability layer fails mid-flight, the engine fails closed:
/// subsequent queries are refused rather than served unaccounted.
class MediationEngine {
 public:
  struct Options {
    /// Engine-wide ceiling on the combined privacy loss of one answer.
    double max_combined_loss = 0.9;
    /// Interval-loss threshold for the inference auditor.
    double max_interval_loss = 0.9;
    /// Per-requester cumulative loss budget across the whole history.
    double max_cumulative_loss = 2.0;
    /// Warehouse answers up to this many epochs old ("quick response for
    /// emergencies"); the warehouse is bypassed when false.
    bool enable_warehouse = true;
    uint64_t warehouse_max_age = 1;
    /// Warehouse scale knobs (see mediator/warehouse.h): fingerprints hash
    /// across `warehouse_shards` independently locked shards, and the cache
    /// as a whole is bounded to `warehouse_max_bytes` (ApproxBytes
    /// accounting; oldest-epoch / LRU-within-epoch eviction; 0 = unbounded).
    size_t warehouse_shards = 16;
    size_t warehouse_max_bytes = 256ull << 20;
    /// Single-flight coalescing of identical concurrent queries (see
    /// QueryOptions::coalesce for the exact merge rule). Off ⇒ every call
    /// executes privately, whatever the per-query option says.
    bool enable_single_flight = true;
    /// Worker threads for the per-source fan-out. 0 ⇒ serial in-line
    /// execution (no pool — the pre-concurrency behaviour, also the
    /// baseline the parallel-mediation benchmark compares against).
    size_t worker_threads = Executor::DefaultThreadCount();
    /// Per-source circuit breakers: off by default (pure retry/deadline
    /// degradation, the PR 1 behaviour); when on, `circuit_breaker` tunes
    /// the thresholds and `QueryOptions::bypass_circuit_breaker` can exempt
    /// a single query.
    bool enable_circuit_breakers = false;
    CircuitBreakerConfig circuit_breaker;
    /// Overload resilience (see mediator/admission.h): max-inflight gating,
    /// bounded fair-share queueing, and per-requester rate limiting, all
    /// applied ahead of single-flight so shed queries never touch
    /// history/budget. The default config is fully permissive (no gating,
    /// no rate limit) — the pre-admission behaviour.
    AdmissionConfig admission;
    /// Durable mode: history records appended between snapshot rotations
    /// (smaller ⇒ faster recovery, more snapshot I/O). 0 ⇒ snapshot only
    /// during Recover. Crossing the threshold *triggers* the background
    /// snapshotter; the rotation itself runs off the query path.
    uint64_t snapshot_every_records = 256;
    /// fsync the WAL before releasing each answer. Turning this off keeps
    /// the WAL ordering but trades the power-failure guarantee for latency
    /// (the recovery benchmark measures both).
    bool sync_wal = true;
    /// Bounded-state knobs. Per-requester budget state lives in
    /// `history_shards` independently locked shards; the in-memory history
    /// ring keeps at most `max_resident_history` entries (sequence numbers
    /// and `history()->size()` keep counting past it; 0 = unbounded); after
    /// each snapshot rotation, cold requesters beyond `hot_requesters` are
    /// spilled to the generation's durable floor index and faulted back in
    /// on their next query (0 = never spill). The defaults keep small
    /// deployments entirely resident.
    size_t history_shards = 16;
    size_t max_resident_history = 4096;
    size_t hot_requesters = 65536;
    /// Rate limit between background snapshot rotations (milliseconds
    /// between rotation starts; 0 = unlimited).
    uint64_t snapshot_min_interval_ms = 0;
  };

  explicit MediationEngine(Options options);
  MediationEngine() : MediationEngine(Options()) {}

  /// Registers a remote source (non-owning; sources outlive the engine).
  /// Fails with kAlreadyExists for a duplicate owner and with
  /// kInvalidArgument for registration after GenerateMediatedSchema — both
  /// used to be silently accepted and corrupted the mediated schema.
  Status RegisterSource(source::FederatedSource* src);
  std::vector<std::string> SourceOwners() const;

  /// Builds the mediated schema from the sources' privacy-respecting
  /// sketches. Must be called before Execute; freezes registration.
  Status GenerateMediatedSchema(const std::string& shared_key);
  const match::MediatedSchema& mediated_schema() const { return schema_; }

  /// Attaches a durability directory and restores fail-closed state from it
  /// (no-op state-wise when the directory is fresh). Replays the newest
  /// valid snapshot plus its WAL — discarding a damaged tail but holding
  /// every requester's cumulative loss at no less than its last durable
  /// value — then folds the result into a fresh snapshot generation and
  /// starts journaling. Must run on a fresh engine (before any Execute);
  /// call it once per process, at startup.
  Status Recover(const std::string& dir);

  /// True once Recover attached a directory (the engine journals releases).
  bool persistence_enabled() const { return persist_attached_.load(); }
  /// True when the durability layer failed and the engine is failing
  /// closed (every Execute refused until a new process Recovers).
  bool persistence_failed() const { return persist_failed_.load(); }

  /// Crash-injection harness: arms a kill-point on the live WAL (see
  /// persist::KillPoint) that fires on the `after_appends`-th subsequent
  /// append, simulating process death at exactly that durability step. The
  /// engine then fails closed; tests rebuild an engine and Recover. Fails
  /// unless persistence is attached.
  Status ArmPersistKillPoint(persist::KillPoint kill_point,
                             uint64_t after_appends = 0);

  /// Crash-injection harness for the compact/rotate sequence: arms a
  /// one-shot kill inside the next snapshot rotation (see
  /// persist::RotateKillPoint). The failed rotation latches the same
  /// fail-closed refusal as a WAL append failure. Fails unless persistence
  /// is attached.
  Status ArmRotateKillPoint(persist::RotateKillPoint kill_point);

  /// Requests a snapshot rotation through the background snapshotter (the
  /// one blessed manual-snapshot path; direct StateLog rotation is flagged
  /// by piye_lint). With `wait`, blocks until a rotation that started after
  /// this call completes and returns its status; otherwise returns OK
  /// immediately after scheduling. Fails unless persistence is attached.
  Status TriggerSnapshot(bool wait = true);

  /// Advances the logical clock (fresh epoch ⇒ warehouse entries age).
  /// Journaled when persistence is attached.
  void AdvanceEpoch();
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Journaled warehouse eviction (prefer this over mutating `warehouse()`
  /// directly in durable deployments, so the materialized state on disk
  /// tracks the in-memory store between snapshots).
  Status EvictWarehouseOlderThan(uint64_t epoch_horizon);

  /// Per-stage timing record of one query (see common/trace.h).
  using StageTiming = trace::StageTiming;

  struct IntegratedResult {
    /// Refcounted handle to the integrated answer (never null on a released
    /// result). On a warehouse hit this *is* the cached materialization —
    /// zero-copy; on a live execution it is shared with the warehouse entry
    /// the release materialized. Treat as immutable.
    std::shared_ptr<const relational::Table> table_handle;
    const relational::Table& table() const { return *table_handle; }
    double combined_privacy_loss = 0.0;
    bool from_warehouse = false;
    std::vector<std::string> sources_answered;
    /// owner -> reason (could not serve the fragment: no mapped attributes,
    /// privacy refusal, transient failure after retries, deadline, or a
    /// circuit breaker shedding the source).
    std::map<std::string, std::string> sources_skipped;
    /// owners whose results privacy control excluded from the answer.
    std::vector<std::string> sources_suppressed;
    std::vector<StageTiming> timings;
  };

  /// Runs one integrated query under the given options.
  Result<IntegratedResult> Execute(const source::PiqlQuery& query,
                                   const QueryOptions& options);

  /// Back-compat forwarding overload for the old positional-dedup call
  /// shape; new code should pass QueryOptions.
  Result<IntegratedResult> Execute(const source::PiqlQuery& query,
                                   const std::vector<std::string>& dedup_keys = {}) {
    QueryOptions options;
    options.dedup_keys = dedup_keys;
    return Execute(query, options);
  }

  /// Health / readiness accounting for load balancers and operators.
  struct SourceHealth {
    std::string owner;
    /// "closed" / "open" / "half-open", or "disabled" without breakers.
    std::string breaker_state;
    uint32_t consecutive_failures = 0;
    uint64_t shed_total = 0;
    uint64_t opened_total = 0;
    /// Wire-level counters of the source's transport (all zeros with
    /// `over_network == false` for an in-process source).
    source::TransportStats transport;
  };
  struct HealthReport {
    /// Serving-ready: schema built, durability (if attached) intact, and at
    /// least one source admitting fragments.
    bool ready = false;
    bool schema_ready = false;
    bool persistence_enabled = false;
    bool persistence_ok = true;
    uint64_t wal_generation = 0;
    size_t sources_total = 0;
    /// Sources whose breaker would admit a fragment right now.
    size_t sources_admitting = 0;
    std::vector<SourceHealth> sources;
    /// Admission pipeline state (live gauges + lifetime counters): queries
    /// executing now, queries waiting in the fair-share queue, and the
    /// engine.admitted / engine.shed / engine.cancelled totals.
    size_t admission_inflight = 0;
    size_t admission_queue_depth = 0;
    uint64_t admitted_total = 0;
    uint64_t shed_total = 0;
    uint64_t cancelled_total = 0;
    /// Durability-state gauges (all zero / "never" without persistence):
    /// what an operator watches to see compaction actually bounding growth.
    uint64_t wal_live_bytes = 0;          ///< durable bytes in the live WAL
    uint64_t records_since_snapshot = 0;  ///< WAL records since last rotation
    uint64_t snapshots_total = 0;         ///< completed rotations (lifetime)
    /// Milliseconds since / duration of the last completed rotation;
    /// age is UINT64_MAX when none ever completed.
    uint64_t last_snapshot_age_ms = UINT64_MAX;
    uint64_t last_snapshot_duration_ms = 0;
    /// Milliseconds Recover spent loading the snapshot + replaying the WAL.
    uint64_t last_recovery_replay_ms = 0;
    /// The hot set vs. the spill store: requesters with resident budget
    /// state, requesters in the durable floor index (spilled requesters are
    /// index-only), and lifetime spill evictions.
    size_t resident_requesters = 0;
    uint64_t floor_index_requesters = 0;
    uint64_t spilled_requesters_total = 0;
  };
  HealthReport Health() const;

  QueryHistory* history() { return &history_; }
  Warehouse* warehouse() { return &warehouse_; }
  PrivacyControl* control() { return &control_; }

  /// Engine-lifetime counters and per-stage latency histograms (queries
  /// executed, fragments dispatched/retried/timed out, breaker and
  /// warehouse activity, WAL records…), dumpable as JSON via
  /// trace::MetricsRegistry::ToJson.
  trace::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct FragmentOutcome;
  struct InflightExecution;

  /// The body of one federated execution (everything Execute did before
  /// single-flight existed): warehouse lookup, budget check, fragmentation,
  /// fan-out, privacy control, integration, durable release. `fingerprint`
  /// is the serialized effective query (already requester-corrected).
  Result<IntegratedResult> ExecuteUncoalesced(const source::PiqlQuery& query,
                                              const QueryOptions& options,
                                              const std::string& fingerprint);

  /// Cheap structural validation of the options, before the query is
  /// admitted or charged: negative deadline, runaway retry counts, and a
  /// quorum no source set can meet are caller bugs reported as
  /// kInvalidArgument, not silently misinterpreted.
  Status ValidateOptions(const QueryOptions& options) const;

  /// Runs one fragment against its source with bounded retry/backoff. The
  /// token (caller token tightened with the fan-out deadline) is polled
  /// before each attempt and interrupts the backoff sleeps; a cancelled
  /// attempt reports nothing to the breaker — the source is not to blame
  /// for a caller that gave up.
  static void RunFragmentWithRetry(const source::FederatedSource* src,
                                   const source::PiqlQuery& fragment,
                                   const QueryOptions& options,
                                   std::chrono::steady_clock::time_point deadline,
                                   const CancelToken& cancel,
                                   trace::MetricsRegistry* metrics,
                                   FragmentOutcome* outcome);

  /// The fail-closed durability barrier of one release (or refusal): in
  /// durable mode, appends the history record (and warehouse put) to the
  /// WAL and makes it durable, then applies it in memory; a durability
  /// failure withholds the answer and flips the engine into fail-closed
  /// refusal. In volatile mode, applies in memory directly.
  Status RecordDurably(HistoryEntry entry,
                       std::shared_ptr<const relational::Table> warehouse_table,
                       const std::string& fingerprint);

  /// Appends one auxiliary record (epoch/evict/audit) and syncs; marks the
  /// engine failed on error. Caller must hold persist_mu_.
  Status JournalLocked(RecordType type, const std::string& payload)
      REQUIRES(persist_mu_);

  /// Compacts the trust anchor into the next generation: folds the dirty
  /// budget floors into the floor index, snapshots the resident state,
  /// rotates the WAL, then marks floors clean, republishes the floor index
  /// for fault-ins, and spills cold requesters down to `hot_requesters`.
  /// Caller must hold persist_mu_.
  Status RotateSnapshotLocked() REQUIRES(persist_mu_);

  /// The snapshotter worker's entry point: takes persist_mu_, runs
  /// RotateSnapshotLocked, and latches fail-closed on any rotation failure
  /// (the same latch a WAL append failure trips).
  Status RotateSnapshotBackground();

  Status FailClosedStatus() const;

  Options options_;
  std::vector<source::FederatedSource*> sources_;
  match::MediatedSchema schema_;
  bool schema_ready_ = false;
  QueryHistory history_;
  Warehouse warehouse_;
  PrivacyControl control_;
  std::atomic<uint64_t> epoch_{0};
  trace::MetricsRegistry metrics_;
  /// owner -> breaker; populated at registration, consulted only when
  /// options_.enable_circuit_breakers (stable addresses: pool tasks report
  /// outcomes through these pointers after the waiter moved on).
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  /// Admission pipeline (declared after metrics_, which it reports into).
  AdmissionController admission_;

  /// Durability layer. persist_mu_ serializes WAL appends with their
  /// in-memory application, so recovery's replay order matches execution
  /// order; the atomics let hot paths check state without the lock.
  /// Single-flight table: coalescing key -> in-flight execution. A leader
  /// inserts its flight before executing and removes it before publishing;
  /// followers that joined in between wait on the flight's condition
  /// variable and share the leader's result.
  mutable Mutex inflight_mu_;
  std::map<std::string, std::shared_ptr<InflightExecution>> inflight_
      GUARDED_BY(inflight_mu_);

  mutable Mutex persist_mu_;
  std::unique_ptr<persist::StateLog> persist_ GUARDED_BY(persist_mu_);
  std::atomic<bool> persist_attached_{false};
  std::atomic<bool> persist_failed_{false};
  uint64_t records_since_snapshot_ GUARDED_BY(persist_mu_) = 0;

  /// The current generation's floor index, republished after every
  /// rotation. A *leaf* lock: the history's fault-in provider copies the
  /// handle under floor_index_mu_ only — it must never touch persist_mu_,
  /// because fault-ins run both with and without persist_mu_ held.
  mutable Mutex floor_index_mu_;
  std::shared_ptr<const persist::FloorIndex> floor_index_
      GUARDED_BY(floor_index_mu_);

  /// Durability observability (Health): wall-clock-free timestamps as
  /// steady_clock nanosecond counts (0 = never).
  std::atomic<uint64_t> last_snapshot_done_ns_{0};
  std::atomic<uint64_t> last_snapshot_duration_ms_{0};
  std::atomic<uint64_t> last_recovery_replay_ms_{0};
  std::atomic<uint64_t> snapshots_total_{0};

  /// Declared last: destroyed (joined) first, so in-flight fragment tasks
  /// finish before any other engine state is torn down. Null when
  /// options_.worker_threads == 0 (serial mode).
  std::unique_ptr<Executor> executor_;

  /// Declared after executor_ so it is stopped (worker joined) before
  /// anything else is torn down: its rotate callback touches persist_,
  /// history_, warehouse_, and control_. Created by Recover.
  std::unique_ptr<persist::Snapshotter> snapshotter_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_ENGINE_H_

#ifndef PIYE_MEDIATOR_ENGINE_H_
#define PIYE_MEDIATOR_ENGINE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "common/trace.h"
#include "match/mediated_schema.h"
#include "mediator/fragmenter.h"
#include "mediator/history.h"
#include "mediator/privacy_control.h"
#include "mediator/query_options.h"
#include "mediator/result_integrator.h"
#include "mediator/warehouse.h"
#include "source/remote_source.h"

namespace piye {
namespace mediator {

/// The Privacy Preserving Mediation Engine of Figure 2(b), wired end to end:
/// mediated-schema generation over source sketches, query fragmentation,
/// per-source execution (each source runs its own Figure 2(a) pipeline),
/// result integration with private dedup, privacy control over the
/// integrated answer, history logging, and hybrid warehousing.
///
/// Concurrency model: sources are autonomous remote services, so Execute
/// fans fragments out across them on a fixed-size thread pool with
/// per-source deadlines, bounded retry for transient failures, and graceful
/// degradation — a slow or failing source is reported in `sources_skipped`,
/// it does not fail the query (unless a `QueryOptions::min_sources` quorum
/// demands it). Execute itself is safe for concurrent callers: the shared
/// stores (history, warehouse, privacy control, metrics) are internally
/// locked, the mediated schema is immutable after initialization, and
/// `RemoteSource::ExecuteFragment` is safe for concurrent calls. Results
/// are deterministic regardless of thread count or completion order:
/// answers are integrated in fragment order and every stochastic stage
/// draws from per-call seeds, so a parallel run is byte-identical to a
/// serial one.
class MediationEngine {
 public:
  struct Options {
    /// Engine-wide ceiling on the combined privacy loss of one answer.
    double max_combined_loss = 0.9;
    /// Interval-loss threshold for the inference auditor.
    double max_interval_loss = 0.9;
    /// Per-requester cumulative loss budget across the whole history.
    double max_cumulative_loss = 2.0;
    /// Warehouse answers up to this many epochs old ("quick response for
    /// emergencies"); the warehouse is bypassed when false.
    bool enable_warehouse = true;
    uint64_t warehouse_max_age = 1;
    /// Worker threads for the per-source fan-out. 0 ⇒ serial in-line
    /// execution (no pool — the pre-concurrency behaviour, also the
    /// baseline the parallel-mediation benchmark compares against).
    size_t worker_threads = Executor::DefaultThreadCount();
  };

  explicit MediationEngine(Options options);
  MediationEngine() : MediationEngine(Options()) {}

  /// Registers a remote source (non-owning; sources outlive the engine).
  /// Fails with kAlreadyExists for a duplicate owner and with
  /// kInvalidArgument for registration after GenerateMediatedSchema — both
  /// used to be silently accepted and corrupted the mediated schema.
  Status RegisterSource(source::RemoteSource* src);
  std::vector<std::string> SourceOwners() const;

  /// Builds the mediated schema from the sources' privacy-respecting
  /// sketches. Must be called before Execute; freezes registration.
  Status GenerateMediatedSchema(const std::string& shared_key);
  const match::MediatedSchema& mediated_schema() const { return schema_; }

  /// Advances the logical clock (fresh epoch ⇒ warehouse entries age).
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Per-stage timing record of one query (see common/trace.h).
  using StageTiming = trace::StageTiming;

  struct IntegratedResult {
    relational::Table table;
    double combined_privacy_loss = 0.0;
    bool from_warehouse = false;
    std::vector<std::string> sources_answered;
    /// owner -> reason (could not serve the fragment: no mapped attributes,
    /// privacy refusal, transient failure after retries, or deadline).
    std::map<std::string, std::string> sources_skipped;
    /// owners whose results privacy control excluded from the answer.
    std::vector<std::string> sources_suppressed;
    std::vector<StageTiming> timings;
  };

  /// Runs one integrated query under the given options.
  Result<IntegratedResult> Execute(const source::PiqlQuery& query,
                                   const QueryOptions& options);

  /// Back-compat forwarding overload for the old positional-dedup call
  /// shape; new code should pass QueryOptions.
  Result<IntegratedResult> Execute(const source::PiqlQuery& query,
                                   const std::vector<std::string>& dedup_keys = {}) {
    QueryOptions options;
    options.dedup_keys = dedup_keys;
    return Execute(query, options);
  }

  QueryHistory* history() { return &history_; }
  Warehouse* warehouse() { return &warehouse_; }
  PrivacyControl* control() { return &control_; }

  /// Engine-lifetime counters and per-stage latency histograms (queries
  /// executed, fragments dispatched/retried/timed out, …), dumpable as
  /// JSON via trace::MetricsRegistry::ToJson.
  trace::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct FragmentOutcome;

  /// Runs one fragment against its source with bounded retry/backoff.
  static void RunFragmentWithRetry(const source::RemoteSource* src,
                                   const source::PiqlQuery& fragment,
                                   const QueryOptions& options,
                                   std::chrono::steady_clock::time_point deadline,
                                   trace::MetricsRegistry* metrics,
                                   FragmentOutcome* outcome);

  Options options_;
  std::vector<source::RemoteSource*> sources_;
  match::MediatedSchema schema_;
  bool schema_ready_ = false;
  QueryHistory history_;
  Warehouse warehouse_;
  PrivacyControl control_;
  std::atomic<uint64_t> epoch_{0};
  trace::MetricsRegistry metrics_;
  /// Declared last: destroyed (joined) first, so in-flight fragment tasks
  /// finish before any other engine state is torn down. Null when
  /// options_.worker_threads == 0 (serial mode).
  std::unique_ptr<Executor> executor_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_ENGINE_H_

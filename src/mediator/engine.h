#ifndef PIYE_MEDIATOR_ENGINE_H_
#define PIYE_MEDIATOR_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "match/mediated_schema.h"
#include "mediator/fragmenter.h"
#include "mediator/history.h"
#include "mediator/privacy_control.h"
#include "mediator/result_integrator.h"
#include "mediator/warehouse.h"
#include "source/remote_source.h"

namespace piye {
namespace mediator {

/// The Privacy Preserving Mediation Engine of Figure 2(b), wired end to end:
/// mediated-schema generation over source sketches, query fragmentation,
/// per-source execution (each source runs its own Figure 2(a) pipeline),
/// result integration with private dedup, privacy control over the
/// integrated answer, history logging, and hybrid warehousing.
class MediationEngine {
 public:
  struct Options {
    /// Engine-wide ceiling on the combined privacy loss of one answer.
    double max_combined_loss = 0.9;
    /// Interval-loss threshold for the inference auditor.
    double max_interval_loss = 0.9;
    /// Per-requester cumulative loss budget across the whole history.
    double max_cumulative_loss = 2.0;
    /// Warehouse answers up to this many epochs old ("quick response for
    /// emergencies"); the warehouse is bypassed when false.
    bool enable_warehouse = true;
    uint64_t warehouse_max_age = 1;
  };

  explicit MediationEngine(Options options);
  MediationEngine() : MediationEngine(Options()) {}

  /// Registers a remote source (non-owning; sources outlive the engine).
  void RegisterSource(source::RemoteSource* src);
  std::vector<std::string> SourceOwners() const;

  /// Builds the mediated schema from the sources' privacy-respecting
  /// sketches. Must be called before Execute.
  Status GenerateMediatedSchema(const std::string& shared_key);
  const match::MediatedSchema& mediated_schema() const { return schema_; }

  /// Advances the logical clock (fresh epoch ⇒ warehouse entries age).
  void AdvanceEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  struct StageTiming {
    std::string stage;
    double micros = 0.0;
  };

  struct IntegratedResult {
    relational::Table table;
    double combined_privacy_loss = 0.0;
    bool from_warehouse = false;
    std::vector<std::string> sources_answered;
    /// owner -> reason (could not serve the fragment).
    std::map<std::string, std::string> sources_skipped;
    /// owners whose results privacy control excluded from the answer.
    std::vector<std::string> sources_suppressed;
    std::vector<StageTiming> timings;
  };

  /// Runs one integrated query. `dedup_keys` names mediated attributes used
  /// for PSI-style duplicate elimination (empty ⇒ whole-row distinct).
  Result<IntegratedResult> Execute(const source::PiqlQuery& query,
                                   const std::vector<std::string>& dedup_keys = {});

  QueryHistory* history() { return &history_; }
  Warehouse* warehouse() { return &warehouse_; }
  PrivacyControl* control() { return &control_; }

 private:
  Options options_;
  std::vector<source::RemoteSource*> sources_;
  match::MediatedSchema schema_;
  bool schema_ready_ = false;
  QueryHistory history_;
  Warehouse warehouse_;
  PrivacyControl control_;
  uint64_t epoch_ = 0;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_ENGINE_H_

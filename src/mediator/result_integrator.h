#ifndef PIYE_MEDIATOR_RESULT_INTEGRATOR_H_
#define PIYE_MEDIATOR_RESULT_INTEGRATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "match/mediated_schema.h"
#include "relational/table.h"
#include "xml/node.h"

namespace piye {
namespace mediator {

/// The Result Integrator of Figure 2(b): converts the tagged XML results of
/// the sources back to tables, renames their columns to mediated attribute
/// names, pads attributes a source could not deliver with NULLs, unions
/// everything, and removes duplicates — by exact PSI-style keys when the
/// caller names key attributes, by whole-row identity otherwise.
class ResultIntegrator {
 public:
  explicit ResultIntegrator(const match::MediatedSchema* schema) : schema_(schema) {}

  struct SourceResult {
    std::string owner;
    relational::Table table;  ///< columns already mediated-named
  };

  /// Parses a tagged <result> and renames its columns to mediated attribute
  /// names using the schema's (source column -> attribute) mappings.
  /// Aggregate aliases of the form `func_column` are renamed to
  /// `func_attribute`.
  Result<SourceResult> FromTaggedXml(const xml::XmlNode& result) const;

  /// Unions the per-source tables over the union of their columns (missing
  /// columns padded with NULL), appending a `_source` provenance column,
  /// then deduplicates. `dedup_keys` empty ⇒ whole-row distinct (ignoring
  /// provenance).
  Result<relational::Table> Integrate(const std::vector<SourceResult>& results,
                                      const std::vector<std::string>& dedup_keys) const;

 private:
  const match::MediatedSchema* schema_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_RESULT_INTEGRATOR_H_

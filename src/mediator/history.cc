#include "mediator/history.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace piye {
namespace mediator {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

QueryHistory::QueryHistory(Options options)
    : max_resident_entries_(options.max_resident_entries),
      shards_(RoundUpPow2(std::max<size_t>(1, options.shards))) {
  shard_mask_ = shards_.size() - 1;
}

QueryHistory::Shard& QueryHistory::ShardFor(const std::string& requester) const {
  return shards_[std::hash<std::string>{}(requester) & shard_mask_];
}

size_t QueryHistory::Record(HistoryEntry entry) {
  const std::string requester = entry.requester;
  const double loss = entry.aggregated_privacy_loss;
  const bool released = entry.released;
  uint64_t seq = 0;
  {
    MutexLock lock(entries_mu_);
    entry.sequence_number = next_sequence_++;
    seq = entry.sequence_number;
    entries_.push_back(std::move(entry));
    if (max_resident_entries_ > 0 && entries_.size() > max_resident_entries_) {
      entries_.pop_front();
    }
  }
  if (released) {
    Shard& shard = ShardFor(requester);
    MutexLock lock(shard.mu);
    RequesterState& st = shard.state[requester];
    st.loss += loss;
    st.dirty = true;
    st.last_touch = Touch();
  }
  return seq;
}

size_t QueryHistory::size() const {
  MutexLock lock(entries_mu_);
  return next_sequence_;
}

size_t QueryHistory::resident_entries() const {
  MutexLock lock(entries_mu_);
  return entries_.size();
}

size_t QueryHistory::resident_requesters() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.state.size();
  }
  return total;
}

std::vector<HistoryEntry> QueryHistory::Snapshot() const {
  MutexLock lock(entries_mu_);
  return std::vector<HistoryEntry>(entries_.begin(), entries_.end());
}

double QueryHistory::CumulativeLoss(const std::string& requester) const {
  const Shard& shard = ShardFor(requester);
  MutexLock lock(shard.mu);
  auto it = shard.state.find(requester);
  return it == shard.state.end() ? 0.0 : it->second.loss;
}

Result<double> QueryHistory::DurableCumulativeLoss(const std::string& requester) {
  {
    Shard& shard = ShardFor(requester);
    MutexLock lock(shard.mu);
    auto it = shard.state.find(requester);
    if (it != shard.state.end()) {
      it->second.last_touch = Touch();
      return it->second.loss;
    }
  }
  // Not resident: consult the durable floor store. The provider is called
  // with no shard lock held — it does file I/O.
  FloorProvider provider;
  {
    MutexLock lock(provider_mu_);
    provider = provider_;
  }
  if (!provider) {
    // Volatile engine: nothing is ever spilled, so absent means fresh.
    return 0.0;
  }
  PIYE_ASSIGN_OR_RETURN(std::optional<double> floor, provider(requester));
  Shard& shard = ShardFor(requester);
  MutexLock lock(shard.mu);
  // A concurrent Record/fault-in may have raced us here; max-merge so the
  // floor can only raise the budget, never reset it.
  RequesterState& st = shard.state[requester];
  if (floor.has_value()) {
    faulted_in_total_.fetch_add(1);
    st.loss = std::max(st.loss, *floor);
  }
  // A pure fault-in stays clean: the resident value equals (or is below,
  // never above) what the durable index already holds only when dirtied by
  // a concurrent Record, which set the bit itself.
  st.last_touch = Touch();
  return st.loss;
}

std::map<std::string, double> QueryHistory::CumulativeLosses() const {
  std::map<std::string, double> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [requester, st] : shard.state) out[requester] = st.loss;
  }
  return out;
}

std::map<std::string, double> QueryHistory::DirtyFloors() const {
  std::map<std::string, double> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [requester, st] : shard.state) {
      if (st.dirty) out[requester] = st.loss;
    }
  }
  return out;
}

void QueryHistory::MarkClean(const std::map<std::string, double>& persisted) {
  for (const auto& [requester, floor] : persisted) {
    Shard& shard = ShardFor(requester);
    MutexLock lock(shard.mu);
    auto it = shard.state.find(requester);
    if (it == shard.state.end()) continue;
    // Only clean if the durable floor covers the resident loss; a Record
    // that raced in since the DirtyFloors capture keeps the entry dirty so
    // the next rotation persists it and the spiller cannot evict it.
    if (it->second.loss <= floor) it->second.dirty = false;
  }
}

size_t QueryHistory::SpillColdest(size_t max_resident) {
  if (max_resident == 0) return 0;
  // Pass 1: collect (touch, shard, name) for every clean resident entry.
  struct Candidate {
    uint64_t touch;
    size_t shard;
    std::string requester;
  };
  std::vector<Candidate> candidates;
  size_t resident = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(shards_[s].mu);
    resident += shards_[s].state.size();
    for (const auto& [requester, st] : shards_[s].state) {
      if (!st.dirty) candidates.push_back({st.last_touch, s, requester});
    }
  }
  if (resident <= max_resident) return 0;
  size_t excess = resident - max_resident;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.touch < b.touch;
            });
  // Pass 2: evict coldest-first, revalidating under the shard lock — an
  // entry touched or dirtied since pass 1 stays resident.
  size_t evicted = 0;
  for (const Candidate& c : candidates) {
    if (evicted >= excess) break;
    MutexLock lock(shards_[c.shard].mu);
    auto it = shards_[c.shard].state.find(c.requester);
    if (it == shards_[c.shard].state.end()) continue;
    if (it->second.dirty || it->second.last_touch != c.touch) continue;
    shards_[c.shard].state.erase(it);
    ++evicted;
  }
  spilled_total_.fetch_add(evicted);
  return evicted;
}

void QueryHistory::set_floor_provider(FloorProvider provider) {
  MutexLock lock(provider_mu_);
  provider_ = std::move(provider);
}

Status QueryHistory::Restore(std::vector<HistoryEntry> entries,
                             const std::map<std::string, double>& floors,
                             uint64_t total_entries) {
  // Recompute per-requester losses from the entries before they move into
  // the ring, then raise to the floors. Everything restored is marked
  // dirty: the recovery fold-in snapshot re-merges these floors durably,
  // after which they are clean and spillable again.
  uint64_t next = total_entries;
  std::map<std::string, double> recomputed;
  for (const auto& e : entries) {
    next = std::max<uint64_t>(next, e.sequence_number + 1);
    if (e.released) recomputed[e.requester] += e.aggregated_privacy_loss;
  }
  {
    MutexLock lock(entries_mu_);
    if (next_sequence_ != 0 || !entries_.empty()) {
      return Status::InvalidArgument(
          "QueryHistory::Restore requires an empty history");
    }
    for (auto& e : entries) entries_.push_back(std::move(e));
    while (max_resident_entries_ > 0 &&
           entries_.size() > max_resident_entries_) {
      entries_.pop_front();
    }
    next_sequence_ = next;
  }
  for (const auto& [requester, loss] : recomputed) {
    Shard& shard = ShardFor(requester);
    MutexLock lock(shard.mu);
    RequesterState& st = shard.state[requester];
    st.loss += loss;
    st.dirty = true;
    st.last_touch = Touch();
  }
  for (const auto& [requester, floor] : floors) {
    Shard& shard = ShardFor(requester);
    MutexLock lock(shard.mu);
    RequesterState& st = shard.state[requester];
    st.loss = std::max(st.loss, floor);
    st.dirty = true;
    st.last_touch = Touch();
  }
  return Status::OK();
}

std::vector<HistoryEntry> QueryHistory::ForRequester(
    const std::string& requester) const {
  MutexLock lock(entries_mu_);
  std::vector<HistoryEntry> out;
  for (const auto& e : entries_) {
    if (e.requester == requester) out.push_back(e);
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

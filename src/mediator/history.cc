#include "mediator/history.h"

namespace piye {
namespace mediator {

size_t QueryHistory::Record(HistoryEntry entry) {
  MutexLock lock(mu_);
  entry.sequence_number = entries_.size();
  if (entry.released) {
    cumulative_loss_[entry.requester] += entry.aggregated_privacy_loss;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().sequence_number;
}

std::vector<HistoryEntry> QueryHistory::Snapshot() const {
  MutexLock lock(mu_);
  return entries_;
}

double QueryHistory::CumulativeLoss(const std::string& requester) const {
  MutexLock lock(mu_);
  auto it = cumulative_loss_.find(requester);
  return it == cumulative_loss_.end() ? 0.0 : it->second;
}

std::map<std::string, double> QueryHistory::CumulativeLosses() const {
  MutexLock lock(mu_);
  return cumulative_loss_;
}

Status QueryHistory::Restore(std::vector<HistoryEntry> entries,
                             const std::map<std::string, double>& floors) {
  MutexLock lock(mu_);
  if (!entries_.empty()) {
    return Status::InvalidArgument("QueryHistory::Restore requires an empty history");
  }
  entries_ = std::move(entries);
  cumulative_loss_.clear();
  for (const auto& e : entries_) {
    if (e.released) cumulative_loss_[e.requester] += e.aggregated_privacy_loss;
  }
  for (const auto& [requester, floor] : floors) {
    double& loss = cumulative_loss_[requester];
    if (loss < floor) loss = floor;
  }
  return Status::OK();
}

std::vector<HistoryEntry> QueryHistory::ForRequester(
    const std::string& requester) const {
  MutexLock lock(mu_);
  std::vector<HistoryEntry> out;
  for (const auto& e : entries_) {
    if (e.requester == requester) out.push_back(e);
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

#include "mediator/history.h"

namespace piye {
namespace mediator {

size_t QueryHistory::Record(HistoryEntry entry) {
  entry.sequence_number = entries_.size();
  if (entry.released) {
    cumulative_loss_[entry.requester] += entry.aggregated_privacy_loss;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().sequence_number;
}

double QueryHistory::CumulativeLoss(const std::string& requester) const {
  auto it = cumulative_loss_.find(requester);
  return it == cumulative_loss_.end() ? 0.0 : it->second;
}

std::vector<const HistoryEntry*> QueryHistory::ForRequester(
    const std::string& requester) const {
  std::vector<const HistoryEntry*> out;
  for (const auto& e : entries_) {
    if (e.requester == requester) out.push_back(&e);
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

#ifndef PIYE_MEDIATOR_HISTORY_H_
#define PIYE_MEDIATOR_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace piye {
namespace mediator {

/// One entry of the mediation engine's query history (the "History" store of
/// Figure 2(b)). The history is what makes sequence-level privacy control
/// possible: cumulative per-requester losses are tracked across queries.
struct HistoryEntry {
  size_t sequence_number = 0;
  std::string requester;
  std::string purpose;
  std::string query_text;  ///< serialized PIQL
  std::vector<std::string> sources_answered;
  std::vector<std::string> sources_refused;
  double aggregated_privacy_loss = 0.0;
  bool released = false;  ///< false when privacy control suppressed the result
};

/// Append-only log with per-requester cumulative loss accounting.
///
/// All accessors are safe against concurrent `MediationEngine::Execute`
/// calls: readers get locked copies. (An earlier `entries()` accessor handed
/// out a bare reference into the log — a reallocation race while queries
/// ran — and was removed; use `Snapshot` or `ForRequester`.)
class QueryHistory {
 public:
  /// Appends and returns the assigned sequence number.
  size_t Record(HistoryEntry entry);

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  /// Copy of the full log, taken under the lock.
  std::vector<HistoryEntry> Snapshot() const;

  /// Sum of released aggregated losses for a requester across the history —
  /// the crude sequence-level budget the privacy control enforces on top of
  /// the per-query checks.
  double CumulativeLoss(const std::string& requester) const;

  /// Entries issued by one requester (copies, so safe under concurrency).
  std::vector<HistoryEntry> ForRequester(const std::string& requester) const;

  /// Copy of the whole per-requester cumulative-loss map (snapshotting).
  std::map<std::string, double> CumulativeLosses() const;

  /// Recovery: replaces the log with `entries` (in order, keeping their
  /// sequence numbers) and recomputes cumulative losses, then raises each
  /// requester's cumulative loss to at least its `floors` value. The floor
  /// is the fail-closed invariant of recovery — a requester's budget
  /// consumption is never reconstructed below the last durably recorded
  /// value, even if the entries that produced it were lost with a damaged
  /// log tail. Requires an empty history (a freshly built engine).
  Status Restore(std::vector<HistoryEntry> entries,
                 const std::map<std::string, double>& floors);

 private:
  mutable Mutex mu_;
  std::vector<HistoryEntry> entries_ GUARDED_BY(mu_);
  std::map<std::string, double> cumulative_loss_ GUARDED_BY(mu_);
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_HISTORY_H_

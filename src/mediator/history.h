#ifndef PIYE_MEDIATOR_HISTORY_H_
#define PIYE_MEDIATOR_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace piye {
namespace mediator {

/// One entry of the mediation engine's query history (the "History" store of
/// Figure 2(b)). The history is what makes sequence-level privacy control
/// possible: cumulative per-requester losses are tracked across queries.
struct HistoryEntry {
  size_t sequence_number = 0;
  std::string requester;
  std::string purpose;
  std::string query_text;  ///< serialized PIQL
  std::vector<std::string> sources_answered;
  std::vector<std::string> sources_refused;
  double aggregated_privacy_loss = 0.0;
  bool released = false;  ///< false when privacy control suppressed the result
};

/// Bounded-memory query history with sharded per-requester budget floors and
/// cold-requester spill.
///
/// Two stores, separately locked:
///
///  - A bounded ring of recent `HistoryEntry` records (`max_resident_entries`)
///    for audit/inspection. Sequence numbers keep counting past the ring —
///    `size()` is the *total logical* entry count, not the resident count.
///  - Per-requester budget state (cumulative loss floor, dirty bit, LRU
///    touch) in power-of-two hash shards, each with its own `piye::Mutex` —
///    the same placement scheme as the sharded warehouse.
///
/// Memory holds only the hot set: after each snapshot rotation the engine
/// calls `MarkClean` + `SpillColdest`, evicting cold *clean* requesters
/// whose floors are durable in the StateLog's floor index. A spilled
/// requester's first returning query calls `DurableCumulativeLoss`, which
/// faults the floor back in through the installed `FloorProvider` before any
/// budget decision is made — and a provider failure propagates as an error
/// the engine turns into a refusal (fail closed, never default-allow).
///
/// All accessors are safe against concurrent `MediationEngine::Execute`
/// calls: readers get locked copies.
class QueryHistory {
 public:
  struct Options {
    size_t shards = 16;                 ///< rounded up to a power of two
    size_t max_resident_entries = 4096; ///< entry-ring bound; 0 = unbounded
  };

  /// Loads the durable budget floor for a requester that is not resident.
  /// Returns nullopt when the requester has never been spilled; an error
  /// Status when the durable store cannot answer (callers refuse).
  using FloorProvider =
      std::function<Result<std::optional<double>>(const std::string&)>;

  QueryHistory() : QueryHistory(Options{}) {}
  explicit QueryHistory(Options options);

  /// Appends and returns the assigned sequence number.
  size_t Record(HistoryEntry entry);

  /// Total logical entries ever recorded (recovered counts included), not
  /// the resident-ring size — sequence numbers and the "how many queries has
  /// this mediator answered" invariant survive compaction.
  size_t size() const;

  /// Entries still resident in the bounded ring.
  size_t resident_entries() const;

  /// Requesters with resident budget state (the hot set).
  size_t resident_requesters() const;

  /// Requesters evicted by SpillColdest over this process's lifetime.
  uint64_t spilled_total() const { return spilled_total_.load(); }

  /// Floors faulted back in from the durable store over this lifetime.
  uint64_t faulted_in_total() const { return faulted_in_total_.load(); }

  /// Copy of the resident entry ring, taken under the lock.
  std::vector<HistoryEntry> Snapshot() const;

  /// Resident-only cumulative loss: 0.0 for a requester with no resident
  /// state, *even if a spilled floor exists*. Budget decisions must use
  /// `DurableCumulativeLoss`; this accessor is for inspection and for
  /// volatile (no-persistence) engines, where everything is resident.
  double CumulativeLoss(const std::string& requester) const;

  /// The budget-decision accessor: the requester's cumulative loss, faulting
  /// its durable floor in through the FloorProvider if it is not resident.
  /// A provider failure is returned as-is — the caller must refuse the
  /// query, not treat the requester as fresh.
  Result<double> DurableCumulativeLoss(const std::string& requester);

  /// Entries issued by one requester, from the resident ring (copies).
  std::vector<HistoryEntry> ForRequester(const std::string& requester) const;

  /// Copy of every resident requester's cumulative loss (snapshotting).
  std::map<std::string, double> CumulativeLosses() const;

  /// Floors modified since they were last marked clean — the incremental
  /// part of a snapshot rotation.
  std::map<std::string, double> DirtyFloors() const;

  /// Marks clean exactly the floors covered by `persisted` (the map a prior
  /// DirtyFloors call returned, now durable). A requester whose resident
  /// loss has grown past its persisted floor stays dirty — a Record that
  /// lands between the DirtyFloors capture and this call must survive into
  /// the next rotation, or a subsequent spill would quietly hand budget
  /// back through the stale durable floor.
  void MarkClean(const std::map<std::string, double>& persisted);

  /// Evicts the coldest *clean* resident requesters until at most
  /// `max_resident` remain; returns how many were evicted. Dirty floors are
  /// never spilled — their budget is not yet durable. 0 disables spill.
  size_t SpillColdest(size_t max_resident);

  void set_floor_provider(FloorProvider provider);

  /// Recovery: replaces the log with `entries` (in order, keeping their
  /// sequence numbers) and recomputes cumulative losses, then raises each
  /// requester's cumulative loss to at least its `floors` value. The floor
  /// is the fail-closed invariant of recovery — a requester's budget
  /// consumption is never reconstructed below the last durably recorded
  /// value, even if the entries that produced it were lost with a damaged
  /// log tail. `total_entries` restores the logical size() across
  /// compactions that dropped old entries. Every restored floor is marked
  /// dirty so the recovery fold-in snapshot re-merges it durably. Requires
  /// an empty history (a freshly built engine).
  Status Restore(std::vector<HistoryEntry> entries,
                 const std::map<std::string, double>& floors,
                 uint64_t total_entries = 0);

 private:
  struct RequesterState {
    double loss = 0.0;
    bool dirty = false;       ///< floor changed since last durable merge
    uint64_t last_touch = 0;  ///< global LRU clock value
  };
  struct Shard {
    mutable Mutex mu;
    std::map<std::string, RequesterState> state GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& requester) const;
  uint64_t Touch() { return touch_clock_.fetch_add(1) + 1; }

  size_t shard_mask_ = 0;
  size_t max_resident_entries_ = 0;
  mutable std::vector<Shard> shards_;

  mutable Mutex entries_mu_;
  std::deque<HistoryEntry> entries_ GUARDED_BY(entries_mu_);
  uint64_t next_sequence_ GUARDED_BY(entries_mu_) = 0;

  mutable Mutex provider_mu_;
  FloorProvider provider_ GUARDED_BY(provider_mu_);

  std::atomic<uint64_t> touch_clock_{0};
  std::atomic<uint64_t> spilled_total_{0};
  std::atomic<uint64_t> faulted_in_total_{0};
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_HISTORY_H_

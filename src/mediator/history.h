#ifndef PIYE_MEDIATOR_HISTORY_H_
#define PIYE_MEDIATOR_HISTORY_H_

#include <map>
#include <string>
#include <vector>

namespace piye {
namespace mediator {

/// One entry of the mediation engine's query history (the "History" store of
/// Figure 2(b)). The history is what makes sequence-level privacy control
/// possible: cumulative per-requester losses are tracked across queries.
struct HistoryEntry {
  size_t sequence_number = 0;
  std::string requester;
  std::string purpose;
  std::string query_text;  ///< serialized PIQL
  std::vector<std::string> sources_answered;
  std::vector<std::string> sources_refused;
  double aggregated_privacy_loss = 0.0;
  bool released = false;  ///< false when privacy control suppressed the result
};

/// Append-only log with per-requester cumulative loss accounting.
class QueryHistory {
 public:
  /// Appends and returns the assigned sequence number.
  size_t Record(HistoryEntry entry);

  const std::vector<HistoryEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Sum of released aggregated losses for a requester across the history —
  /// the crude sequence-level budget the privacy control enforces on top of
  /// the per-query checks.
  double CumulativeLoss(const std::string& requester) const;

  /// Entries issued by one requester.
  std::vector<const HistoryEntry*> ForRequester(const std::string& requester) const;

 private:
  std::vector<HistoryEntry> entries_;
  std::map<std::string, double> cumulative_loss_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_HISTORY_H_

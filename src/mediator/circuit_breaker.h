#ifndef PIYE_MEDIATOR_CIRCUIT_BREAKER_H_
#define PIYE_MEDIATOR_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/sync.h"
#include "common/trace.h"

namespace piye {
namespace mediator {

/// Tuning for the per-source circuit breakers (MediationEngine::Options).
struct CircuitBreakerConfig {
  /// Consecutive transport failures (kUnavailable after retries, or a
  /// blown per-source deadline) that open the breaker. Privacy refusals are
  /// verdicts, not failures — they never trip it.
  uint32_t failure_threshold = 5;
  /// How long an open breaker sheds load before letting a probe through.
  uint64_t open_cooldown_ms = 100;
  /// Consecutive successful probes required to close again.
  uint32_t half_open_successes = 1;
};

/// Per-source circuit breaker, layered over the engine's retry path: where
/// retry absorbs a *transient* fault inside one query, the breaker protects
/// queries from a *persistently* failing source. A flapping source would
/// otherwise burn its retry/backoff and deadline budget on every single
/// query; once the breaker opens, the source is shed instantly (it lands in
/// `sources_skipped` without being dialed) until a cooldown passes, then a
/// half-open probe decides whether it has recovered.
///
/// Thread-safe: fragments for the same source may run concurrently, and
/// pool tasks report outcomes after the waiting query has moved on.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  static const char* StateName(State s);

  /// `metrics` (optional) receives engine.breaker_* counters.
  CircuitBreaker(CircuitBreakerConfig config, trace::MetricsRegistry* metrics)
      : config_(config), metrics_(metrics) {}

  /// Admission decision for one fragment. Closed ⇒ true. Open ⇒ false until
  /// the cooldown elapses, at which point the breaker half-opens and admits
  /// a single probe. Half-open ⇒ only the probe slot is admitted; everyone
  /// else is shed.
  bool Admit(std::chrono::steady_clock::time_point now);

  /// The admitted fragment's final outcome. Transport failures
  /// (unavailable / deadline) count toward opening; a success resets the
  /// failure run and, in half-open, works toward closing.
  void OnSuccess();
  void OnFailure(std::chrono::steady_clock::time_point now);

  State state() const;
  uint32_t consecutive_failures() const;
  uint64_t shed_total() const;
  uint64_t opened_total() const;

 private:
  void OpenLocked(std::chrono::steady_clock::time_point now) REQUIRES(mu_);

  CircuitBreakerConfig config_;
  trace::MetricsRegistry* metrics_;
  mutable Mutex mu_;
  State state_ GUARDED_BY(mu_) = State::kClosed;
  uint32_t consecutive_failures_ GUARDED_BY(mu_) = 0;
  uint32_t probe_successes_ GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point open_until_ GUARDED_BY(mu_){};
  uint64_t shed_total_ GUARDED_BY(mu_) = 0;
  uint64_t opened_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_CIRCUIT_BREAKER_H_

#include "mediator/fragmenter.h"

#include "common/macros.h"
#include "source/query_transformer.h"

namespace piye {
namespace mediator {

Result<const match::MediatedAttribute*> QueryFragmenter::Resolve(
    const std::string& attribute) const {
  const match::MediatedAttribute* attr =
      schema_->FindByName(attribute, names_, threshold_);
  if (attr == nullptr) {
    return Status::NotFound("no mediated attribute matches '" + attribute + "'");
  }
  return attr;
}

Result<QueryFragmenter::FragmentationResult> QueryFragmenter::Fragment(
    const source::PiqlQuery& query, const std::vector<std::string>& sources) const {
  FragmentationResult out;
  // Resolve every referenced attribute to a mediated attribute first.
  std::map<std::string, const match::MediatedAttribute*> resolved;
  std::vector<std::string> unresolved;
  for (const auto& name : query.ReferencedAttributes()) {
    auto attr = Resolve(name);
    if (attr.ok()) {
      resolved[name] = *attr;
    } else {
      unresolved.push_back(name);
    }
  }
  // Attributes needed by WHERE / aggregate are mandatory everywhere.
  std::set<std::string> mandatory;
  if (query.where != nullptr) {
    std::set<std::string> cols;
    query.where->CollectColumns(&cols);
    mandatory.insert(cols.begin(), cols.end());
  }
  if (query.aggregate.has_value()) {
    if (!query.aggregate->attribute.empty()) mandatory.insert(query.aggregate->attribute);
    for (const auto& g : query.aggregate->group_by) mandatory.insert(g);
  }
  for (const auto& name : unresolved) {
    if (mandatory.count(name) != 0) {
      return Status::NotFound(
          "mandatory query attribute '" + name +
          "' matches nothing in the mediated schema (it may be privacy-hidden)");
    }
  }

  for (const auto& src : sources) {
    // Build the per-source rename map: query attr -> source column.
    std::map<std::string, std::string> bindings;
    std::string missing;
    for (const auto& [name, attr] : resolved) {
      const auto mappings = schema_->MappingsAt(attr->name, src);
      if (mappings.empty()) {
        if (mandatory.count(name) != 0) {
          missing = name;
          break;
        }
        continue;  // optional select attribute simply absent at this source
      }
      bindings[name] = mappings.front().column;
    }
    if (!missing.empty()) {
      out.skipped[src] = "lacks mandatory attribute '" + missing + "'";
      continue;
    }
    source::PiqlQuery frag;
    frag.requester = query.requester;
    frag.purpose = query.purpose;
    frag.max_information_loss = query.max_information_loss;
    frag.target_path = query.target_path;
    bool any_select = false;
    if (query.aggregate.has_value()) {
      source::PiqlAggregate agg;
      agg.func = query.aggregate->func;
      if (!query.aggregate->attribute.empty()) {
        agg.attribute = bindings.at(query.aggregate->attribute);
      }
      for (const auto& g : query.aggregate->group_by) {
        agg.group_by.push_back(bindings.at(g));
      }
      frag.aggregate = std::move(agg);
      any_select = true;
    } else {
      for (const auto& sel : query.select) {
        auto it = bindings.find(sel);
        if (it == bindings.end()) continue;
        frag.select.push_back(it->second);
        any_select = true;
      }
    }
    if (!any_select) {
      out.skipped[src] = "no requested attribute is available";
      continue;
    }
    if (query.where != nullptr) {
      PIYE_ASSIGN_OR_RETURN(frag.where,
                            source::RewriteColumns(query.where, bindings));
    }
    out.fragments.push_back({src, std::move(frag)});
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

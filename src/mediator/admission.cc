#include "mediator/admission.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace piye {
namespace mediator {

namespace {

/// Explicit RequestCancel is detected by polling at this granularity while a
/// waiter is queued (its deadline, by contrast, is honoured exactly via
/// wait_until). Admission wakes from a freed slot are cv-notified and
/// therefore immediate.
constexpr std::chrono::milliseconds kCancelPoll{2};

/// Every this-many admissions through a bucket shard, fully-refilled buckets
/// are swept. A full bucket is indistinguishable from a fresh one, so the
/// sweep never changes an admission decision — it only bounds memory.
constexpr uint64_t kBucketSweepInterval = 256;

/// Every this-many pushes/pops, the fair-share queue drops idle entries whose
/// pass-debt the virtual clock has absorbed.
constexpr uint64_t kQueueSweepInterval = 64;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --- TokenBucket ---

TokenBucket::TokenBucket(double tokens_per_second, double burst)
    : rate_(std::max(0.0, tokens_per_second)),
      burst_(burst > 0.0 ? burst : std::max(1.0, rate_)),
      tokens_(burst_) {}

void TokenBucket::RefillLocked(TimePoint now) const {
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
    return;
  }
  if (now <= last_refill_) return;  // steady_clock, but stay defensive
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - last_refill_)
          .count();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

bool TokenBucket::TryConsume(TimePoint now) {
  RefillLocked(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

uint64_t TokenBucket::RetryAfterMillis(TimePoint now) const {
  RefillLocked(now);
  if (tokens_ >= 1.0) return 0;
  if (rate_ <= 0.0) return 1000;  // rate off ⇒ nothing ever refills; guess
  const double seconds = (1.0 - tokens_) / rate_;
  return static_cast<uint64_t>(std::ceil(seconds * 1000.0));
}

double TokenBucket::tokens(TimePoint now) const {
  RefillLocked(now);
  return tokens_;
}

bool TokenBucket::FullyRefilled(TimePoint now) const {
  RefillLocked(now);
  return tokens_ >= burst_;
}

// --- FairShareQueue ---

void FairShareQueue::SetWeight(const std::string& requester, double weight) {
  const double clamped = std::max(1e-6, weight);
  weights_[requester] = clamped;
  auto it = requesters_.find(requester);
  if (it != requesters_.end()) it->second.weight = clamped;
}

void FairShareQueue::SweepIdle() {
  if (++ops_ % kQueueSweepInterval != 0) return;
  for (auto it = requesters_.begin(); it != requesters_.end();) {
    // Evictable: no waiters, and no pass-debt ahead of the virtual clock. A
    // re-push would clamp pass up to virtual_time_ anyway, so recreating the
    // entry later lands it in exactly this state.
    if (it->second.waiters.empty() && it->second.pass <= virtual_time_) {
      it = requesters_.erase(it);
    } else {
      ++it;
    }
  }
}

bool FairShareQueue::Push(uint64_t id, const std::string& requester,
                          TimePoint deadline) {
  if (size_ >= max_depth_) return false;  // LIFO shed: the newcomer loses
  auto [entry, inserted] = requesters_.try_emplace(requester);
  PerRequester& r = entry->second;
  if (inserted) {
    auto w = weights_.find(requester);
    if (w != weights_.end()) r.weight = w->second;
  }
  if (r.waiters.empty()) {
    // idle → active: no banked credit from the idle period.
    r.pass = std::max(r.pass, virtual_time_);
  }
  Waiter w;
  w.id = id;
  w.deadline = deadline;
  w.seq = next_seq_++;
  // Insert keeping (deadline, seq) order — earliest deadline served first.
  auto it = std::upper_bound(r.waiters.begin(), r.waiters.end(), w,
                             [](const Waiter& a, const Waiter& b) {
                               if (a.deadline != b.deadline)
                                 return a.deadline < b.deadline;
                               return a.seq < b.seq;
                             });
  r.waiters.insert(it, w);
  ++size_;
  SweepIdle();
  return true;
}

bool FairShareQueue::Pop(uint64_t* id) {
  if (size_ == 0) return false;
  std::map<std::string, PerRequester>::iterator best = requesters_.end();
  for (auto it = requesters_.begin(); it != requesters_.end(); ++it) {
    if (it->second.waiters.empty()) continue;
    if (best == requesters_.end() || it->second.pass < best->second.pass) {
      best = it;  // map order makes the tie-break lexicographic: total order
    }
  }
  PerRequester& r = best->second;
  virtual_time_ = r.pass;
  r.pass += 1.0 / r.weight;
  *id = r.waiters.front().id;
  r.waiters.pop_front();
  --size_;
  // The just-served requester keeps pass > virtual_time_, so the sweep
  // cannot drop its banked debt.
  SweepIdle();
  return true;
}

bool FairShareQueue::Remove(uint64_t id) {
  for (auto& [name, r] : requesters_) {
    for (auto it = r.waiters.begin(); it != r.waiters.end(); ++it) {
      if (it->id == id) {
        r.waiters.erase(it);
        --size_;
        return true;
      }
    }
  }
  return false;
}

// --- AdmissionController ---

AdmissionController::AdmissionController(AdmissionConfig config,
                                         trace::MetricsRegistry* metrics)
    : config_(std::move(config)),
      metrics_(metrics),
      bucket_shards_(RoundUpPow2(std::max<size_t>(1, config_.bucket_shards))),
      queue_(config_.max_queue_depth) {
  bucket_shard_mask_ = bucket_shards_.size() - 1;
  for (const auto& [requester, weight] : config_.requester_weights) {
    queue_.SetWeight(requester, weight);
  }
}

AdmissionController::BucketShard& AdmissionController::BucketShardFor(
    const std::string& requester) const {
  return bucket_shards_[std::hash<std::string>{}(requester) &
                        bucket_shard_mask_];
}

size_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

size_t AdmissionController::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

size_t AdmissionController::tracked_buckets() const {
  size_t total = 0;
  for (const BucketShard& shard : bucket_shards_) {
    MutexLock lock(shard.mu);
    total += shard.buckets.size();
  }
  return total;
}

size_t AdmissionController::tracked_requesters() const {
  MutexLock lock(mu_);
  return queue_.tracked_requesters();
}

void AdmissionController::Permit::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

void AdmissionController::Release() {
  MutexLock lock(mu_);
  uint64_t id = 0;
  if (queue_.Pop(&id)) {
    // The slot transfers to the fair-share winner; inflight_ is unchanged.
    admitted_[id] = true;
    cv_.NotifyAll();
  } else {
    --inflight_;
  }
}

Result<AdmissionController::Permit> AdmissionController::Admit(
    const std::string& requester, const CancelToken& token) {
  {
    // A deadline that has already passed is rejected here, before the query
    // touches the bucket, the queue, or anything downstream.
    Status live = token.Check();
    if (!live.ok()) {
      metrics_->AddCounter("engine.cancelled");
      return live;
    }
  }
  const auto now = std::chrono::steady_clock::now();

  if (config_.tokens_per_second > 0.0) {
    // Rate check under the shard lock only — the hot rejection path for an
    // abusive requester never touches the main admission mutex.
    BucketShard& shard = BucketShardFor(requester);
    MutexLock shard_lock(shard.mu);
    auto it = shard.buckets
                  .try_emplace(requester, config_.tokens_per_second,
                               config_.bucket_burst)
                  .first;
    const bool consumed = it->second.TryConsume(now);
    const uint64_t retry_ms = consumed ? 0 : it->second.RetryAfterMillis(now);
    if (++shard.ops % kBucketSweepInterval == 0) {
      for (auto b = shard.buckets.begin(); b != shard.buckets.end();) {
        // Keep the bucket just charged; evict any bucket back at full burst
        // (decision-identical to the fresh bucket a returning requester
        // would get).
        if (b != it && b->second.FullyRefilled(now)) {
          b = shard.buckets.erase(b);
        } else {
          ++b;
        }
      }
    }
    if (!consumed) {
      metrics_->AddCounter("engine.shed");
      return Status::ResourceExhausted(
          "admission: requester '" + requester +
          "' exceeded its rate limit; retry after ~" +
          std::to_string(retry_ms) + " ms");
    }
  }

  MutexLock lock(mu_);
  if (config_.max_inflight == 0 ||
      (inflight_ < config_.max_inflight && queue_.empty())) {
    ++inflight_;
    metrics_->AddCounter("engine.admitted");
    return Permit(this);
  }

  const uint64_t id = next_waiter_id_++;
  if (!queue_.Push(id, requester, token.deadline())) {
    metrics_->AddCounter("engine.shed");
    // Retry-after heuristic: every queued waiter ahead plus this one needs a
    // slot; with no service-time model, a millisecond per waiter is a usable
    // lower bound for a backoff hint.
    return Status::ResourceExhausted(
        "admission queue saturated (" + std::to_string(queue_.size()) +
        " waiting, " + std::to_string(inflight_) + " in flight); retry after ~" +
        std::to_string(queue_.size() + 1) + " ms");
  }
  metrics_->AddCounter("engine.queued");
  const auto wait_start = now;

  for (;;) {
    auto wake = std::chrono::steady_clock::now() + kCancelPoll;
    if (token.has_deadline()) wake = std::min(wake, token.deadline());
    cv_.WaitUntil(lock, wake);  // poll tick: timeout and wakeup both recheck
    if (auto it = admitted_.find(id); it != admitted_.end()) {
      admitted_.erase(it);
      metrics_->AddCounter("engine.admitted");
      metrics_->RecordLatency(
          "engine.admission_wait",
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count());
      return Permit(this);
    }
    if (token.cancelled()) {
      if (!queue_.Remove(id)) {
        // Raced with Release: the slot was already transferred to us. Hand
        // it straight on — this query is abandoning it.
        admitted_.erase(id);
        uint64_t next = 0;
        if (queue_.Pop(&next)) {
          admitted_[next] = true;
          cv_.NotifyAll();
        } else {
          --inflight_;
        }
      }
      metrics_->AddCounter("engine.cancelled");
      return token.status();
    }
  }
}

}  // namespace mediator
}  // namespace piye

#include "mediator/result_integrator.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "linkage/record_linkage.h"
#include "relational/xml_bridge.h"
#include "source/metadata_tagger.h"

namespace piye {
namespace mediator {

namespace {

const char* kAggPrefixes[] = {"count_", "sum_", "avg_", "min_", "max_", "stddev_"};

/// Maps one source-local column name to its mediated name (or returns the
/// input unchanged when no mapping exists).
std::string MediatedName(const match::MediatedSchema& schema,
                         const std::string& owner, const std::string& column) {
  for (const auto& attr : schema.attributes()) {
    for (const auto& m : attr.mappings) {
      if (m.source == owner && m.column == column) return attr.name;
    }
  }
  // Aggregate aliases: func_column → func_attribute.
  for (const char* prefix : kAggPrefixes) {
    if (strings::StartsWith(column, prefix)) {
      const std::string inner = column.substr(std::string(prefix).size());
      const std::string mapped = MediatedName(schema, owner, inner);
      if (mapped != inner) return std::string(prefix) + mapped;
      return column;
    }
  }
  return column;
}

}  // namespace

Result<ResultIntegrator::SourceResult> ResultIntegrator::FromTaggedXml(
    const xml::XmlNode& result) const {
  SourceResult out;
  out.owner = source::MetadataTagger::ReadOwner(result);
  PIYE_ASSIGN_OR_RETURN(out.table, relational::XmlToTable(result));
  for (size_t c = 0; c < out.table.schema().num_columns(); ++c) {
    out.table.mutable_schema().SetColumnName(
        c, MediatedName(*schema_, out.owner, out.table.schema().column(c).name));
  }
  return out;
}

Result<relational::Table> ResultIntegrator::Integrate(
    const std::vector<SourceResult>& results,
    const std::vector<std::string>& dedup_keys) const {
  // Ordered union of mediated column names.
  std::vector<relational::Column> columns;
  auto has_column = [&columns](const std::string& name) {
    return std::any_of(columns.begin(), columns.end(),
                       [&name](const relational::Column& c) { return c.name == name; });
  };
  for (const auto& r : results) {
    for (const auto& col : r.table.schema().columns()) {
      if (!has_column(col.name)) columns.push_back(col);
    }
  }
  relational::Schema schema(columns);
  schema.AddColumn({"_source", relational::ColumnType::kString});
  relational::Table combined(schema);
  for (const auto& r : results) {
    // Per-source column index map (or -1 ⇒ NULL pad).
    std::vector<long> src_idx(columns.size(), -1);
    for (size_t c = 0; c < columns.size(); ++c) {
      auto idx = r.table.schema().IndexOf(columns[c].name);
      if (idx.ok()) src_idx[c] = static_cast<long>(*idx);
    }
    for (const auto& row : r.table.rows()) {
      relational::Row out_row;
      out_row.reserve(columns.size() + 1);
      for (size_t c = 0; c < columns.size(); ++c) {
        out_row.push_back(src_idx[c] < 0 ? relational::Value::Null()
                                         : row[static_cast<size_t>(src_idx[c])]);
      }
      out_row.push_back(relational::Value::Str(r.owner));
      combined.AppendRowUnchecked(std::move(out_row));
    }
  }
  if (!dedup_keys.empty()) {
    return linkage::DeduplicateByKey(combined, dedup_keys);
  }
  // Whole-row distinct ignoring provenance.
  relational::Table out(combined.schema());
  std::set<std::string> seen;
  const size_t payload_cols = columns.size();
  for (const auto& row : combined.rows()) {
    std::string key;
    for (size_t c = 0; c < payload_cols; ++c) {
      key += row[c].ToDisplayString();
      key += '\x1f';
    }
    if (seen.insert(key).second) out.AppendRowUnchecked(row);
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

#include "mediator/result_integrator.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "linkage/record_linkage.h"
#include "relational/xml_bridge.h"
#include "source/metadata_tagger.h"

namespace piye {
namespace mediator {

namespace {

const char* kAggPrefixes[] = {"count_", "sum_", "avg_", "min_", "max_", "stddev_"};

/// Maps one source-local column name to its mediated name (or returns the
/// input unchanged when no mapping exists).
std::string MediatedName(const match::MediatedSchema& schema,
                         const std::string& owner, const std::string& column) {
  for (const auto& attr : schema.attributes()) {
    for (const auto& m : attr.mappings) {
      if (m.source == owner && m.column == column) return attr.name;
    }
  }
  // Aggregate aliases: func_column → func_attribute.
  for (const char* prefix : kAggPrefixes) {
    if (strings::StartsWith(column, prefix)) {
      const std::string inner = column.substr(std::string(prefix).size());
      const std::string mapped = MediatedName(schema, owner, inner);
      if (mapped != inner) return std::string(prefix) + mapped;
      return column;
    }
  }
  return column;
}

}  // namespace

Result<ResultIntegrator::SourceResult> ResultIntegrator::FromTaggedXml(
    const xml::XmlNode& result) const {
  SourceResult out;
  out.owner = source::MetadataTagger::ReadOwner(result);
  PIYE_ASSIGN_OR_RETURN(out.table, relational::XmlToTable(result));
  for (size_t c = 0; c < out.table.schema().num_columns(); ++c) {
    out.table.mutable_schema().SetColumnName(
        c, MediatedName(*schema_, out.owner, out.table.schema().column(c).name));
  }
  return out;
}

Result<relational::Table> ResultIntegrator::Integrate(
    const std::vector<SourceResult>& results,
    const std::vector<std::string>& dedup_keys) const {
  // Ordered union of mediated column names.
  std::vector<relational::Column> columns;
  auto has_column = [&columns](const std::string& name) {
    return std::any_of(columns.begin(), columns.end(),
                       [&name](const relational::Column& c) { return c.name == name; });
  };
  for (const auto& r : results) {
    for (const auto& col : r.table.schema().columns()) {
      if (!has_column(col.name)) columns.push_back(col);
    }
  }
  // Column-wise assembly: each mediated column is stitched from the sources'
  // columns — whole-column appends when the type matches, per-cell coercion
  // (AppendValue rules) when a later source disagrees on the type, and NULL
  // runs when a source lacks the column entirely.
  size_t total_rows = 0;
  for (const auto& r : results) total_rows += r.table.num_rows();
  relational::Table combined;
  for (const auto& column : columns) {
    relational::ColumnVector data(column.type);
    data.Reserve(total_rows);
    for (const auto& r : results) {
      const size_t n = r.table.num_rows();
      auto idx = r.table.schema().IndexOf(column.name);
      if (!idx.ok()) {
        for (size_t i = 0; i < n; ++i) data.AppendNull();
      } else if (r.table.schema().column(*idx).type == column.type) {
        data.AppendColumn(r.table.col(*idx));
      } else {
        const relational::ColumnVector& src = r.table.col(*idx);
        for (size_t i = 0; i < n; ++i) data.AppendValue(src.ValueAt(i));
      }
    }
    combined.AddColumn(column, std::move(data));
  }
  {
    relational::ColumnVector src_col(relational::ColumnType::kString);
    src_col.Reserve(total_rows);
    for (const auto& r : results) {
      for (size_t i = 0; i < r.table.num_rows(); ++i) src_col.AppendStr(r.owner);
    }
    combined.AddColumn({"_source", relational::ColumnType::kString},
                       std::move(src_col));
  }
  if (!dedup_keys.empty()) {
    return linkage::DeduplicateByKey(combined, dedup_keys);
  }
  // Whole-row distinct ignoring provenance.
  std::set<std::string> seen;
  const size_t payload_cols = columns.size();
  std::vector<uint32_t> sel;
  sel.reserve(combined.num_rows());
  for (size_t r = 0; r < combined.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < payload_cols; ++c) {
      key += combined.col(c).ValueAt(r).ToDisplayString();
      key += '\x1f';
    }
    if (seen.insert(std::move(key)).second) sel.push_back(static_cast<uint32_t>(r));
  }
  return combined.Gather(sel);
}

}  // namespace mediator
}  // namespace piye

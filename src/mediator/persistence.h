#ifndef PIYE_MEDIATOR_PERSISTENCE_H_
#define PIYE_MEDIATOR_PERSISTENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mediator/history.h"
#include "mediator/privacy_control.h"
#include "mediator/warehouse.h"

namespace piye {
namespace mediator {

/// The mediation engine's durable-record vocabulary: what gets written to
/// the persist::StateLog WAL and how the full-state snapshot is encoded.
/// Framing, checksums, and torn-tail handling live in persist/; this header
/// is only the (versioned) payload schema.
///
/// Fail-closed contract: a `kHistoryEntry` record carries the requester's
/// cumulative loss *after* the entry, so recovery can hold every budget at
/// its last durable value even when earlier records are lost to corruption.
enum class RecordType : uint16_t {
  kHistoryEntry = 1,
  kWarehousePut = 2,
  kWarehouseEvict = 3,
  kEpochAdvance = 4,
  kSensitiveCell = 5,
  kDisclosure = 6,
};

/// A history entry plus the requester's post-entry cumulative privacy loss.
struct HistoryRecord {
  HistoryEntry entry;
  double cumulative_after = 0.0;
};

std::string EncodeHistoryRecord(const HistoryRecord& record);
Result<HistoryRecord> DecodeHistoryRecord(const std::string& payload);

std::string EncodeWarehousePutRecord(const std::string& fingerprint,
                                     uint64_t epoch,
                                     const relational::Table& table);
Result<Warehouse::SnapshotEntry> DecodeWarehousePutRecord(const std::string& payload);

std::string EncodeEpochRecord(uint64_t epoch);
Result<uint64_t> DecodeEpochRecord(const std::string& payload);

std::string EncodeWarehouseEvictRecord(uint64_t epoch_horizon);
Result<uint64_t> DecodeWarehouseEvictRecord(const std::string& payload);

std::string EncodeCellRecord(const PrivacyControl::SensitiveCellSpec& cell);
Result<PrivacyControl::SensitiveCellSpec> DecodeCellRecord(
    const std::string& payload);

std::string EncodeDisclosureRecord(const PrivacyControl::DisclosureSpec& spec);
Result<PrivacyControl::DisclosureSpec> DecodeDisclosureRecord(
    const std::string& payload);

/// Everything a snapshot captures — the engine's whole trust-anchor state.
///
/// Since compaction, `history` is the *resident tail* of the log (the
/// bounded ring) and `cumulative_loss` the *resident* requesters' floors;
/// spilled requesters live in the generation's FloorIndex instead.
/// `total_history` preserves the logical entry count across compactions
/// that dropped old entries from the ring.
struct DurableState {
  std::vector<HistoryEntry> history;
  std::map<std::string, double> cumulative_loss;
  uint64_t total_history = 0;  ///< logical entries ever recorded
  uint64_t epoch = 0;
  std::vector<Warehouse::SnapshotEntry> warehouse;
  std::vector<PrivacyControl::SensitiveCellSpec> cells;
  std::vector<PrivacyControl::DisclosureSpec> disclosures;
};

std::string EncodeSnapshot(const DurableState& state);
Result<DurableState> DecodeSnapshot(const std::string& blob);

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_PERSISTENCE_H_

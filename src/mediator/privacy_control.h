#ifndef PIYE_MEDIATOR_PRIVACY_CONTROL_H_
#define PIYE_MEDIATOR_PRIVACY_CONTROL_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "inference/sequence_auditor.h"
#include "xml/node.h"

namespace piye {
namespace mediator {

/// The Privacy Control of Figure 2(b). It re-verifies what the sources
/// individually approved, because "the computed value of privacy loss in a
/// source may not hold after the results are integrated with other sources":
///
///  1. *Metadata combination*: per-source tagged losses l_i combine as
///     1 - Π(1 - l_i) — integrating independent partial disclosures about
///     the same entities compounds. The combined loss must stay within
///     every participating source's own budget.
///  2. *Inference audit*: for releases of aggregates over registered
///     sensitive cells, a SequenceAuditor simulates the snooping adversary
///     of Figure 1 across the whole history and refuses any release that
///     would narrow some cell's interval beyond the threshold — this is the
///     defense the fig1-defense benchmark exercises.
///
/// The inference-audit state (the sequence auditor's committed disclosures)
/// is internally locked, so concurrent `MediationEngine::Execute` callers
/// can share one control. `CheckIntegratedResults` is pure.
class PrivacyControl {
 public:
  PrivacyControl(double max_combined_loss, double max_interval_loss)
      : max_combined_loss_(max_combined_loss), auditor_(max_interval_loss) {}

  /// Combined loss of tagged per-source results: 1 - prod(1 - loss_i).
  static double CombineLosses(const std::vector<double>& losses);

  /// Checks the tagged <result> elements of one integrated answer. Fails
  /// with kPrivacyViolation when the combined loss exceeds the engine-wide
  /// maximum or any source's own budget; on success returns the combined
  /// loss.
  Result<double> CheckIntegratedResults(
      const std::vector<const xml::XmlNode*>& tagged_results) const;

  // --- Inference-audit interface (delegates to the sequence auditor) ---

  /// Registers a sensitive cell the engine must protect across queries.
  size_t RegisterSensitiveCell(const std::string& name, double lo, double hi,
                               double true_value);

  Result<double> ApproveMeanDisclosure(const std::vector<size_t>& cells, double tol);
  Result<double> ApproveStdDevDisclosure(const std::vector<size_t>& cells, double tol);

  /// Unlocked view for inspection; callers must not race it with Approve*.
  const inference::SequenceAuditor& auditor() const { return auditor_; }
  double max_combined_loss() const { return max_combined_loss_; }

 private:
  double max_combined_loss_;
  mutable std::mutex mu_;
  inference::SequenceAuditor auditor_;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_PRIVACY_CONTROL_H_

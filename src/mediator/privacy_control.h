#ifndef PIYE_MEDIATOR_PRIVACY_CONTROL_H_
#define PIYE_MEDIATOR_PRIVACY_CONTROL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "inference/sequence_auditor.h"
#include "xml/node.h"

namespace piye {
namespace mediator {

/// The Privacy Control of Figure 2(b). It re-verifies what the sources
/// individually approved, because "the computed value of privacy loss in a
/// source may not hold after the results are integrated with other sources":
///
///  1. *Metadata combination*: per-source tagged losses l_i combine as
///     1 - Π(1 - l_i) — integrating independent partial disclosures about
///     the same entities compounds. The combined loss must stay within
///     every participating source's own budget.
///  2. *Inference audit*: for releases of aggregates over registered
///     sensitive cells, a SequenceAuditor simulates the snooping adversary
///     of Figure 1 across the whole history and refuses any release that
///     would narrow some cell's interval beyond the threshold — this is the
///     defense the fig1-defense benchmark exercises.
///
/// The inference-audit state (the sequence auditor's committed disclosures)
/// is internally locked, so concurrent `MediationEngine::Execute` callers
/// can share one control. `CheckIntegratedResults` is pure.
///
/// The audit state is part of the mediator's trust anchor: when the engine
/// runs durably, every registered cell and committed disclosure is journaled
/// through the `Journal` hook before the disclosed value is released, and
/// `Replay` rebuilds the identical constraint system after a crash — so the
/// auditor refuses the same follow-up disclosure it would have refused had
/// the process never died.
class PrivacyControl {
 public:
  /// A registered sensitive cell, as journaled and snapshotted.
  struct SensitiveCellSpec {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    double true_value = 0.0;
  };

  /// A committed aggregate disclosure, as journaled and snapshotted.
  struct DisclosureSpec {
    enum Kind : uint16_t { kMean = 1, kStdDev = 2 };
    uint16_t kind = kMean;
    std::vector<uint64_t> cells;
    double tol = 0.0;
  };

  /// One journaled audit event: exactly one of `cell` / `disclosure` is
  /// meaningful, selected by `kind`.
  struct JournalEvent {
    enum class Kind { kCell, kDisclosure } kind = Kind::kCell;
    SensitiveCellSpec cell;
    DisclosureSpec disclosure;
  };
  using Journal = std::function<Status(const JournalEvent&)>;

  PrivacyControl(double max_combined_loss, double max_interval_loss)
      : max_combined_loss_(max_combined_loss), auditor_(max_interval_loss) {}

  /// Combined loss of tagged per-source results: 1 - prod(1 - loss_i).
  static double CombineLosses(const std::vector<double>& losses);

  /// Checks the tagged <result> elements of one integrated answer. Fails
  /// with kPrivacyViolation when the combined loss exceeds the engine-wide
  /// maximum or any source's own budget; on success returns the combined
  /// loss.
  Result<double> CheckIntegratedResults(
      const std::vector<const xml::XmlNode*>& tagged_results) const;

  // --- Inference-audit interface (delegates to the sequence auditor) ---

  /// Registers a sensitive cell the engine must protect across queries.
  size_t RegisterSensitiveCell(const std::string& name, double lo, double hi,
                               double true_value);

  /// Fail-closed ordering: the disclosure is committed to the auditor and
  /// journaled before the value is returned. A journal failure surfaces as
  /// the call's error — the caller must then withhold the value, while the
  /// in-memory auditor keeps the (stricter) committed constraint.
  Result<double> ApproveMeanDisclosure(const std::vector<size_t>& cells, double tol);
  Result<double> ApproveStdDevDisclosure(const std::vector<size_t>& cells, double tol);

  /// Installs the durability hook. The hook is invoked *outside* the
  /// control lock (after the event committed in memory), so an engine
  /// snapshotting this state under its own persistence lock cannot deadlock
  /// with a journaling approval; a snapshot may therefore include an event
  /// whose WAL record is still in flight — a superset of the durable log,
  /// which recovery tolerates.
  void set_journal(Journal journal);

  /// Rebuilds the audit state from journaled/snapshotted events (recovery
  /// path; never re-journals). A replayed disclosure that the auditor now
  /// refuses is logged and skipped — the surviving state is then strictly
  /// more conservative than the pre-crash one.
  Status Replay(const std::vector<SensitiveCellSpec>& cells,
                const std::vector<DisclosureSpec>& disclosures);

  /// Committed audit state for snapshotting.
  std::vector<SensitiveCellSpec> SnapshotCells() const;
  std::vector<DisclosureSpec> SnapshotDisclosures() const;

  /// Locked views of the auditor's committed state. (An earlier `auditor()`
  /// accessor handed out an unlocked reference the annotation pass flagged:
  /// reading disclosure counts while a concurrent Approve* mutated the
  /// constraint system was a data race.)
  size_t disclosures_committed() const EXCLUDES(mu_);
  size_t disclosures_refused() const EXCLUDES(mu_);
  Result<std::vector<double>> CurrentLosses() const EXCLUDES(mu_);
  double max_combined_loss() const { return max_combined_loss_; }

 private:
  /// Commits one disclosure under mu_, then journals it outside the lock.
  Result<double> Approve(uint16_t kind, const std::vector<size_t>& cells,
                         double tol) EXCLUDES(mu_);

  double max_combined_loss_;
  mutable Mutex mu_;
  inference::SequenceAuditor auditor_ GUARDED_BY(mu_);
  /// Copied out under mu_ and invoked outside it (ABBA-freedom vs the
  /// engine's persistence lock — see set_journal).
  Journal journal_ GUARDED_BY(mu_);
  std::vector<SensitiveCellSpec> cells_ GUARDED_BY(mu_);
  std::vector<DisclosureSpec> disclosures_ GUARDED_BY(mu_);
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_PRIVACY_CONTROL_H_

#include "mediator/circuit_breaker.h"

namespace piye {
namespace mediator {

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::OpenLocked(std::chrono::steady_clock::time_point now) {
  state_ = State::kOpen;
  open_until_ = now + std::chrono::milliseconds(config_.open_cooldown_ms);
  probe_in_flight_ = false;
  probe_successes_ = 0;
  ++opened_total_;
  if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_opened");
}

bool CircuitBreaker::Admit(std::chrono::steady_clock::time_point now) {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) {
        ++shed_total_;
        if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_shed");
        return false;
      }
      state_ = State::kHalfOpen;
      probe_successes_ = 0;
      probe_in_flight_ = true;
      if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_half_open_probes");
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++shed_total_;
        if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_shed");
        return false;
      }
      probe_in_flight_ = true;
      if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_half_open_probes");
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= config_.half_open_successes) {
      state_ = State::kClosed;
      probe_successes_ = 0;
      if (metrics_ != nullptr) metrics_->AddCounter("engine.breaker_closed");
    }
  }
}

void CircuitBreaker::OnFailure(std::chrono::steady_clock::time_point now) {
  MutexLock lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: the source is still sick; go straight back to open.
    OpenLocked(now);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    OpenLocked(now);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint32_t CircuitBreaker::consecutive_failures() const {
  MutexLock lock(mu_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::shed_total() const {
  MutexLock lock(mu_);
  return shed_total_;
}

uint64_t CircuitBreaker::opened_total() const {
  MutexLock lock(mu_);
  return opened_total_;
}

}  // namespace mediator
}  // namespace piye

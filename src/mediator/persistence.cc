#include "mediator/persistence.h"

#include <utility>

#include "common/macros.h"
#include "persist/codec.h"
#include "relational/xml_bridge.h"
#include "xml/parser.h"

namespace piye {
namespace mediator {

namespace {

using persist::Decoder;
using persist::Encoder;

/// Payload schema version, bumped on any incompatible layout change. A
/// mismatch is a decode error, which recovery treats like a corrupt record
/// (fail closed), never a silent misread.
constexpr uint8_t kVersion = 1;

/// Snapshot layout version. v2 added `total_history` (the logical entry
/// count, so compaction can drop ring entries without forgetting how many
/// queries the mediator has answered); v1 snapshots still decode. WAL
/// record payloads keep their own `kVersion` above.
constexpr uint8_t kSnapshotVersion = 2;

Status CheckVersion(Decoder& dec) {
  PIYE_ASSIGN_OR_RETURN(uint8_t version, dec.GetU8());
  if (version != kVersion) {
    return Status::ParseError("persisted mediator record version " +
                              std::to_string(version) + " != expected " +
                              std::to_string(kVersion));
  }
  return Status::OK();
}

void PutHistoryEntry(Encoder& enc, const HistoryEntry& e) {
  enc.PutU64(e.sequence_number);
  enc.PutString(e.requester);
  enc.PutString(e.purpose);
  enc.PutString(e.query_text);
  enc.PutStringVector(e.sources_answered);
  enc.PutStringVector(e.sources_refused);
  enc.PutDouble(e.aggregated_privacy_loss);
  enc.PutU8(e.released ? 1 : 0);
}

Result<HistoryEntry> GetHistoryEntry(Decoder& dec) {
  HistoryEntry e;
  PIYE_ASSIGN_OR_RETURN(uint64_t seq, dec.GetU64());
  e.sequence_number = seq;
  PIYE_ASSIGN_OR_RETURN(e.requester, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(e.purpose, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(e.query_text, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(e.sources_answered, dec.GetStringVector());
  PIYE_ASSIGN_OR_RETURN(e.sources_refused, dec.GetStringVector());
  PIYE_ASSIGN_OR_RETURN(e.aggregated_privacy_loss, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(uint8_t released, dec.GetU8());
  e.released = released != 0;
  return e;
}

void PutTable(Encoder& enc, const relational::Table& table) {
  enc.PutString(xml::Serialize(*relational::TableToXml(table), /*indent=*/-1));
}

Result<relational::Table> GetTable(Decoder& dec) {
  PIYE_ASSIGN_OR_RETURN(std::string xml_text, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  if (!doc.has_root()) {
    return Status::ParseError("persisted table: empty XML document");
  }
  return relational::XmlToTable(doc.root());
}

void PutCell(Encoder& enc, const PrivacyControl::SensitiveCellSpec& cell) {
  enc.PutString(cell.name);
  enc.PutDouble(cell.lo);
  enc.PutDouble(cell.hi);
  enc.PutDouble(cell.true_value);
}

Result<PrivacyControl::SensitiveCellSpec> GetCell(Decoder& dec) {
  PrivacyControl::SensitiveCellSpec cell;
  PIYE_ASSIGN_OR_RETURN(cell.name, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(cell.lo, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(cell.hi, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(cell.true_value, dec.GetDouble());
  return cell;
}

void PutDisclosure(Encoder& enc, const PrivacyControl::DisclosureSpec& spec) {
  enc.PutU16(spec.kind);
  enc.PutU64Vector(spec.cells);
  enc.PutDouble(spec.tol);
}

Result<PrivacyControl::DisclosureSpec> GetDisclosure(Decoder& dec) {
  PrivacyControl::DisclosureSpec spec;
  PIYE_ASSIGN_OR_RETURN(spec.kind, dec.GetU16());
  if (spec.kind != PrivacyControl::DisclosureSpec::kMean &&
      spec.kind != PrivacyControl::DisclosureSpec::kStdDev) {
    return Status::ParseError("persisted disclosure: unknown kind " +
                              std::to_string(spec.kind));
  }
  PIYE_ASSIGN_OR_RETURN(spec.cells, dec.GetU64Vector());
  PIYE_ASSIGN_OR_RETURN(spec.tol, dec.GetDouble());
  return spec;
}

}  // namespace

std::string EncodeHistoryRecord(const HistoryRecord& record) {
  Encoder enc;
  enc.PutU8(kVersion);
  PutHistoryEntry(enc, record.entry);
  enc.PutDouble(record.cumulative_after);
  return enc.Take();
}

Result<HistoryRecord> DecodeHistoryRecord(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckVersion(dec));
  HistoryRecord record;
  PIYE_ASSIGN_OR_RETURN(record.entry, GetHistoryEntry(dec));
  PIYE_ASSIGN_OR_RETURN(record.cumulative_after, dec.GetDouble());
  return record;
}

std::string EncodeWarehousePutRecord(const std::string& fingerprint,
                                     uint64_t epoch,
                                     const relational::Table& table) {
  Encoder enc;
  enc.PutU8(kVersion);
  enc.PutString(fingerprint);
  enc.PutU64(epoch);
  PutTable(enc, table);
  return enc.Take();
}

Result<Warehouse::SnapshotEntry> DecodeWarehousePutRecord(
    const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckVersion(dec));
  Warehouse::SnapshotEntry entry;
  PIYE_ASSIGN_OR_RETURN(entry.fingerprint, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(entry.epoch, dec.GetU64());
  PIYE_ASSIGN_OR_RETURN(relational::Table table, GetTable(dec));
  entry.table = std::make_shared<const relational::Table>(std::move(table));
  return entry;
}

std::string EncodeEpochRecord(uint64_t epoch) {
  Encoder enc;
  enc.PutU8(kVersion);
  enc.PutU64(epoch);
  return enc.Take();
}

Result<uint64_t> DecodeEpochRecord(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckVersion(dec));
  return dec.GetU64();
}

std::string EncodeWarehouseEvictRecord(uint64_t epoch_horizon) {
  return EncodeEpochRecord(epoch_horizon);
}

Result<uint64_t> DecodeWarehouseEvictRecord(const std::string& payload) {
  return DecodeEpochRecord(payload);
}

std::string EncodeCellRecord(const PrivacyControl::SensitiveCellSpec& cell) {
  Encoder enc;
  enc.PutU8(kVersion);
  PutCell(enc, cell);
  return enc.Take();
}

Result<PrivacyControl::SensitiveCellSpec> DecodeCellRecord(
    const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckVersion(dec));
  return GetCell(dec);
}

std::string EncodeDisclosureRecord(const PrivacyControl::DisclosureSpec& spec) {
  Encoder enc;
  enc.PutU8(kVersion);
  PutDisclosure(enc, spec);
  return enc.Take();
}

Result<PrivacyControl::DisclosureSpec> DecodeDisclosureRecord(
    const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckVersion(dec));
  return GetDisclosure(dec);
}

std::string EncodeSnapshot(const DurableState& state) {
  Encoder enc;
  enc.PutU8(kSnapshotVersion);
  enc.PutU64(state.total_history);
  enc.PutU64(state.history.size());
  for (const auto& e : state.history) PutHistoryEntry(enc, e);
  enc.PutU64(state.cumulative_loss.size());
  for (const auto& [requester, loss] : state.cumulative_loss) {
    enc.PutString(requester);
    enc.PutDouble(loss);
  }
  enc.PutU64(state.epoch);
  enc.PutU64(state.warehouse.size());
  for (const auto& w : state.warehouse) {
    enc.PutString(w.fingerprint);
    enc.PutU64(w.epoch);
    PutTable(enc, *w.table);
  }
  enc.PutU64(state.cells.size());
  for (const auto& c : state.cells) PutCell(enc, c);
  enc.PutU64(state.disclosures.size());
  for (const auto& d : state.disclosures) PutDisclosure(enc, d);
  return enc.Take();
}

Result<DurableState> DecodeSnapshot(const std::string& blob) {
  Decoder dec(blob);
  PIYE_ASSIGN_OR_RETURN(uint8_t version, dec.GetU8());
  if (version != kSnapshotVersion && version != 1) {
    return Status::ParseError("persisted snapshot version " +
                              std::to_string(version) + " != expected " +
                              std::to_string(kSnapshotVersion));
  }
  DurableState state;
  if (version >= 2) {
    PIYE_ASSIGN_OR_RETURN(state.total_history, dec.GetU64());
  }
  PIYE_ASSIGN_OR_RETURN(uint64_t history_count, dec.GetU64());
  for (uint64_t i = 0; i < history_count; ++i) {
    PIYE_ASSIGN_OR_RETURN(HistoryEntry e, GetHistoryEntry(dec));
    state.history.push_back(std::move(e));
  }
  PIYE_ASSIGN_OR_RETURN(uint64_t loss_count, dec.GetU64());
  for (uint64_t i = 0; i < loss_count; ++i) {
    PIYE_ASSIGN_OR_RETURN(std::string requester, dec.GetString());
    PIYE_ASSIGN_OR_RETURN(double loss, dec.GetDouble());
    state.cumulative_loss[std::move(requester)] = loss;
  }
  PIYE_ASSIGN_OR_RETURN(state.epoch, dec.GetU64());
  PIYE_ASSIGN_OR_RETURN(uint64_t warehouse_count, dec.GetU64());
  for (uint64_t i = 0; i < warehouse_count; ++i) {
    Warehouse::SnapshotEntry w;
    PIYE_ASSIGN_OR_RETURN(w.fingerprint, dec.GetString());
    PIYE_ASSIGN_OR_RETURN(w.epoch, dec.GetU64());
    PIYE_ASSIGN_OR_RETURN(relational::Table table, GetTable(dec));
    w.table = std::make_shared<const relational::Table>(std::move(table));
    state.warehouse.push_back(std::move(w));
  }
  PIYE_ASSIGN_OR_RETURN(uint64_t cell_count, dec.GetU64());
  for (uint64_t i = 0; i < cell_count; ++i) {
    PIYE_ASSIGN_OR_RETURN(PrivacyControl::SensitiveCellSpec c, GetCell(dec));
    state.cells.push_back(std::move(c));
  }
  PIYE_ASSIGN_OR_RETURN(uint64_t disclosure_count, dec.GetU64());
  for (uint64_t i = 0; i < disclosure_count; ++i) {
    PIYE_ASSIGN_OR_RETURN(PrivacyControl::DisclosureSpec d, GetDisclosure(dec));
    state.disclosures.push_back(std::move(d));
  }
  if (!dec.exhausted()) {
    return Status::ParseError("persisted snapshot: trailing bytes");
  }
  return state;
}

}  // namespace mediator
}  // namespace piye

#include "mediator/warehouse.h"

#include <algorithm>

namespace piye {
namespace mediator {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  if (n <= 1) return 1;
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Warehouse::Warehouse(const Options& options) {
  const size_t num_shards = RoundUpToPowerOfTwo(options.num_shards);
  shard_mask_ = num_shards - 1;
  max_bytes_per_shard_ =
      options.max_bytes == 0 ? 0 : std::max<size_t>(1, options.max_bytes / num_shards);
  shards_ = std::vector<Shard>(num_shards);
}

void Warehouse::set_metrics(trace::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    c_puts_ = c_hits_ = c_misses_ = c_evictions_ = c_evicted_entries_ =
        c_bytes_evicted_ = c_stale_put_drops_ = nullptr;
    return;
  }
  c_puts_ = metrics->RegisterCounter("warehouse.puts");
  c_hits_ = metrics->RegisterCounter("warehouse.hits");
  c_misses_ = metrics->RegisterCounter("warehouse.misses");
  c_evictions_ = metrics->RegisterCounter("warehouse.evictions");
  c_evicted_entries_ = metrics->RegisterCounter("warehouse.evicted_entries");
  c_bytes_evicted_ = metrics->RegisterCounter("warehouse.bytes_evicted");
  c_stale_put_drops_ = metrics->RegisterCounter("warehouse.stale_put_drops");
}

size_t Warehouse::RemoveLocked(Shard& shard,
                               std::map<std::string, Entry>::iterator it) {
  const size_t freed = it->second.bytes;
  shard.bytes -= freed;
  shard.eviction_order.erase({it->second.epoch, it->second.tick});
  shard.entries.erase(it);
  return freed;
}

void Warehouse::EnforceBudgetLocked(Shard& shard) {
  if (max_bytes_per_shard_ == 0) return;
  size_t bytes_evicted = 0;
  size_t entries_evicted = 0;
  while (shard.bytes > max_bytes_per_shard_ && !shard.eviction_order.empty()) {
    auto victim = shard.entries.find(shard.eviction_order.begin()->second);
    bytes_evicted += RemoveLocked(shard, victim);
    ++entries_evicted;
  }
  if (entries_evicted > 0) {
    shard.evicted += entries_evicted;
    BumpCounter(c_evictions_);
    BumpCounter(c_evicted_entries_, entries_evicted);
    BumpCounter(c_bytes_evicted_, bytes_evicted);
  }
}

void Warehouse::Put(const std::string& fingerprint, relational::Table table,
                    uint64_t epoch) {
  Put(fingerprint,
      std::make_shared<const relational::Table>(std::move(table)), epoch);
}

void Warehouse::Put(const std::string& fingerprint, TableHandle table,
                    uint64_t epoch) {
  if (table == nullptr) return;
  const size_t entry_bytes = table->ApproxBytes();
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it != shard.entries.end()) {
    if (it->second.epoch > epoch) {
      // A replayed (or otherwise stale) put must not roll the
      // materialization back to an older epoch.
      BumpCounter(c_stale_put_drops_);
      return;
    }
    RemoveLocked(shard, it);
  }
  const uint64_t tick = ++shard.tick;
  shard.entries.emplace(fingerprint,
                        Entry{std::move(table), epoch, entry_bytes, tick});
  shard.eviction_order.emplace(EvictionKey{epoch, tick}, fingerprint);
  shard.bytes += entry_bytes;
  BumpCounter(c_puts_);
  EnforceBudgetLocked(shard);
}

Warehouse::TableHandle Warehouse::Get(const std::string& fingerprint,
                                      uint64_t current_epoch,
                                      uint64_t max_age) const {
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it == shard.entries.end()) {
    ++shard.misses;
    BumpCounter(c_misses_);
    return nullptr;
  }
  Entry& entry = it->second;
  const uint64_t age =
      current_epoch >= entry.epoch ? current_epoch - entry.epoch : 0;
  if (age > max_age) {
    ++shard.misses;
    BumpCounter(c_misses_);
    return nullptr;
  }
  // Refresh the LRU position within the entry's epoch.
  shard.eviction_order.erase({entry.epoch, entry.tick});
  entry.tick = ++shard.tick;
  shard.eviction_order.emplace(EvictionKey{entry.epoch, entry.tick}, fingerprint);
  ++shard.hits;
  BumpCounter(c_hits_);
  return entry.table;
}

size_t Warehouse::EvictOlderThan(uint64_t epoch) {
  size_t evicted = 0;
  size_t bytes_evicted = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    // The eviction index is epoch-major, so everything older than the
    // horizon is the prefix below (epoch, 0).
    while (!shard.eviction_order.empty() &&
           shard.eviction_order.begin()->first.first < epoch) {
      auto victim = shard.entries.find(shard.eviction_order.begin()->second);
      bytes_evicted += RemoveLocked(shard, victim);
      ++shard.evicted;
      ++evicted;
    }
  }
  BumpCounter(c_evictions_);
  BumpCounter(c_evicted_entries_, evicted);
  if (bytes_evicted > 0) BumpCounter(c_bytes_evicted_, bytes_evicted);
  return evicted;
}

size_t Warehouse::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

size_t Warehouse::hits() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

size_t Warehouse::misses() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

size_t Warehouse::evicted_entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.evicted;
  }
  return total;
}

size_t Warehouse::bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

std::vector<Warehouse::SnapshotEntry> Warehouse::SnapshotEntries() const {
  std::vector<SnapshotEntry> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    out.reserve(out.size() + shard.entries.size());
    for (const auto& [fingerprint, entry] : shard.entries) {
      out.push_back({fingerprint, entry.epoch, entry.table});
    }
  }
  // Shards are hash-partitioned; restore global fingerprint order so the
  // snapshot encoding stays deterministic.
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

}  // namespace mediator
}  // namespace piye

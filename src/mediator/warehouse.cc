#include "mediator/warehouse.h"

namespace piye {
namespace mediator {

void Warehouse::Put(const std::string& fingerprint, relational::Table table,
                    uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert_or_assign(fingerprint, Entry{std::move(table), epoch});
  if (metrics_ != nullptr) metrics_->AddCounter("warehouse.puts");
}

std::optional<relational::Table> Warehouse::Get(const std::string& fingerprint,
                                                uint64_t current_epoch,
                                                uint64_t max_age) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->AddCounter("warehouse.misses");
    return std::nullopt;
  }
  const uint64_t age =
      current_epoch >= it->second.epoch ? current_epoch - it->second.epoch : 0;
  if (age > max_age) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->AddCounter("warehouse.misses");
    return std::nullopt;
  }
  ++hits_;
  if (metrics_ != nullptr) metrics_->AddCounter("warehouse.hits");
  return it->second.table;
}

size_t Warehouse::EvictOlderThan(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.epoch < epoch) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evicted_entries_ += evicted;
  if (metrics_ != nullptr) {
    metrics_->AddCounter("warehouse.evictions");
    metrics_->AddCounter("warehouse.evicted_entries", evicted);
  }
  return evicted;
}

std::vector<Warehouse::SnapshotEntry> Warehouse::SnapshotEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(entries_.size());
  for (const auto& [fingerprint, entry] : entries_) {
    out.push_back({fingerprint, entry.epoch, entry.table});
  }
  return out;
}

}  // namespace mediator
}  // namespace piye

#include "mediator/warehouse.h"

namespace piye {
namespace mediator {

void Warehouse::Put(const std::string& fingerprint, relational::Table table,
                    uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert_or_assign(fingerprint, Entry{std::move(table), epoch});
}

std::optional<relational::Table> Warehouse::Get(const std::string& fingerprint,
                                                uint64_t current_epoch,
                                                uint64_t max_age) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const uint64_t age =
      current_epoch >= it->second.epoch ? current_epoch - it->second.epoch : 0;
  if (age > max_age) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.table;
}

void Warehouse::EvictOlderThan(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.epoch < epoch) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mediator
}  // namespace piye

#ifndef PIYE_MEDIATOR_WAREHOUSE_H_
#define PIYE_MEDIATOR_WAREHOUSE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.h"
#include "relational/table.h"

namespace piye {
namespace mediator {

/// The local materialization side of the engine's hybrid warehousing /
/// virtual-querying design (Section 5: the hybrid is chosen "due to the
/// quick-response needed during emergency situations"). Integrated results
/// are cached under their query fingerprint with a logical epoch; a lookup
/// specifies how stale an answer it will accept. All operations are
/// internally locked, for concurrent `MediationEngine::Execute` callers.
///
/// Observability: with `set_metrics` wired (the engine does this), every
/// put, hit, miss, and evicted entry is also counted in the shared
/// `trace::MetricsRegistry` (`warehouse.puts`, `warehouse.hits`,
/// `warehouse.misses`, `warehouse.evicted_entries`, `warehouse.evictions`),
/// so cache statistics can no longer silently diverge from what the engine
/// reports — the registry and the accessors below are updated under the
/// same lock.
class Warehouse {
 public:
  /// Stores (replacing) a materialized result at the given logical epoch.
  void Put(const std::string& fingerprint, relational::Table table, uint64_t epoch);

  /// Returns the materialized table if one exists with
  /// epoch >= current_epoch - max_age; otherwise nullopt.
  std::optional<relational::Table> Get(const std::string& fingerprint,
                                       uint64_t current_epoch, uint64_t max_age) const;

  /// Drops everything older than the epoch horizon; returns how many
  /// entries were dropped.
  size_t EvictOlderThan(uint64_t epoch);

  /// Wires put/hit/miss/eviction counters into the engine's registry
  /// (nullptr detaches).
  void set_metrics(trace::MetricsRegistry* metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  size_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  /// Entries dropped by EvictOlderThan over the warehouse's lifetime.
  size_t evicted_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_entries_;
  }

  /// One materialized entry, as snapshotted for the durability layer.
  struct SnapshotEntry {
    std::string fingerprint;
    uint64_t epoch = 0;
    relational::Table table;
  };

  /// Copy of the current materializations (fingerprint order), for
  /// persistence snapshots.
  std::vector<SnapshotEntry> SnapshotEntries() const;

 private:
  struct Entry {
    relational::Table table;
    uint64_t epoch;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
  size_t evicted_entries_ = 0;
  trace::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_WAREHOUSE_H_

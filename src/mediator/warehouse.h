#ifndef PIYE_MEDIATOR_WAREHOUSE_H_
#define PIYE_MEDIATOR_WAREHOUSE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/trace.h"
#include "relational/table.h"

namespace piye {
namespace mediator {

/// The local materialization side of the engine's hybrid warehousing /
/// virtual-querying design (Section 5: the hybrid is chosen "due to the
/// quick-response needed during emergency situations"). Integrated results
/// are cached under their query fingerprint with a logical epoch; a lookup
/// specifies how stale an answer it will accept.
///
/// Scale model — this store sits on the hot read path of every query, so it
/// is built to serve many concurrent `MediationEngine::Execute` callers
/// without a convoy:
///
///  * **Sharded.** Fingerprints hash across `Options::num_shards`
///    independent shards, each with its own mutex — hot fingerprints no
///    longer serialize behind cold ones, and no operation takes a global
///    lock.
///  * **Zero-copy reads.** Entries are `shared_ptr<const Table>`; `Get`
///    hits and `SnapshotEntries` hand out refcounted handles instead of
///    deep table copies. A durability snapshot of the whole cache is
///    O(entries) pointer copies taken one shard at a time — it can no
///    longer stall concurrent readers for the duration of a full deep copy.
///  * **Memory-bounded.** `Options::max_bytes` caps the cache
///    (`relational::Table::ApproxBytes` accounting, budget split evenly
///    across shards). When a `Put` would exceed a shard's slice, entries
///    are evicted oldest-epoch-first, least-recently-used within an epoch,
///    until the new entry fits (an entry larger than the whole slice is
///    evicted straight away — the cache never holds more than its budget).
///  * **Epoch-monotonic.** `Put` keeps the max-epoch entry for a
///    fingerprint: a recovery replay (or any stale writer) can never clobber
///    a newer materialization with an older one.
///
/// Observability: with `set_metrics` wired (the engine does this), every
/// put, hit, miss, and evicted entry is also counted in the shared
/// `trace::MetricsRegistry` (`warehouse.puts`, `warehouse.hits`,
/// `warehouse.misses`, `warehouse.evicted_entries`, `warehouse.evictions`,
/// `warehouse.bytes_evicted`, `warehouse.stale_put_drops`) through cached
/// counter cells, so the hot path never touches the registry's name map.
/// `set_metrics` must be called before concurrent use (the engine wires it
/// at construction).
class Warehouse {
 public:
  /// Refcounted immutable handle to a materialized result.
  using TableHandle = std::shared_ptr<const relational::Table>;

  struct Options {
    /// Shard count; rounded up to a power of two, minimum 1.
    size_t num_shards = 16;
    /// Whole-cache byte budget (0 = unbounded). Each shard enforces
    /// max_bytes / num_shards.
    size_t max_bytes = 0;
  };

  Warehouse() : Warehouse(Options{}) {}
  explicit Warehouse(const Options& options);

  /// Stores a materialized result at the given logical epoch. If an entry
  /// with a *newer* epoch already exists for the fingerprint, the put is
  /// dropped (recovery replays must not roll a materialization back).
  void Put(const std::string& fingerprint, relational::Table table, uint64_t epoch);
  void Put(const std::string& fingerprint, TableHandle table, uint64_t epoch);

  /// Returns a handle to the materialized table if one exists with
  /// epoch >= current_epoch - max_age; otherwise nullptr. A hit refreshes
  /// the entry's LRU position within its epoch.
  TableHandle Get(const std::string& fingerprint, uint64_t current_epoch,
                  uint64_t max_age) const;

  /// Drops everything older than the epoch horizon; returns how many
  /// entries were dropped.
  size_t EvictOlderThan(uint64_t epoch);

  /// Wires put/hit/miss/eviction counters into the engine's registry
  /// (nullptr detaches). Not thread-safe against concurrent operations;
  /// call during setup.
  void set_metrics(trace::MetricsRegistry* metrics);

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  /// Entries dropped (eviction horizon or byte budget) over the warehouse's
  /// lifetime.
  size_t evicted_entries() const;
  /// Current total ApproxBytes of all cached tables.
  size_t bytes() const;
  size_t num_shards() const { return shards_.size(); }
  size_t max_bytes() const { return max_bytes_per_shard_ * shards_.size(); }

  /// One materialized entry, as snapshotted for the durability layer.
  struct SnapshotEntry {
    std::string fingerprint;
    uint64_t epoch = 0;
    TableHandle table;
  };

  /// Handles to the current materializations (fingerprint order), for
  /// persistence snapshots. Zero-copy: each shard is locked only long
  /// enough to copy its fingerprints and handles.
  std::vector<SnapshotEntry> SnapshotEntries() const;

 private:
  struct Entry {
    TableHandle table;
    uint64_t epoch = 0;
    size_t bytes = 0;
    uint64_t tick = 0;  ///< LRU sequence within the shard
  };
  /// Eviction order is epoch-major: (epoch, tick) sorts oldest epoch first
  /// and least-recently-used within an epoch.
  using EvictionKey = std::pair<uint64_t, uint64_t>;
  struct Shard {
    mutable Mutex mu;
    std::map<std::string, Entry> entries GUARDED_BY(mu);
    std::map<EvictionKey, std::string> eviction_order GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    uint64_t tick GUARDED_BY(mu) = 0;
    size_t hits GUARDED_BY(mu) = 0;
    size_t misses GUARDED_BY(mu) = 0;
    size_t evicted GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& fingerprint) const {
    return shards_[std::hash<std::string>{}(fingerprint) & shard_mask_];
  }

  /// Removes one entry (caller holds the shard lock). Returns its bytes.
  size_t RemoveLocked(Shard& shard, std::map<std::string, Entry>::iterator it)
      REQUIRES(shard.mu);

  /// Evicts until the shard fits its byte slice (caller holds the lock).
  void EnforceBudgetLocked(Shard& shard) REQUIRES(shard.mu);

  void BumpCounter(trace::MetricsRegistry::Counter* counter,
                   uint64_t delta = 1) const {
    if (counter != nullptr) counter->fetch_add(delta, std::memory_order_relaxed);
  }

  size_t shard_mask_ = 0;
  size_t max_bytes_per_shard_ = 0;  ///< 0 = unbounded
  mutable std::vector<Shard> shards_;

  /// Cached registry cells (see MetricsRegistry::RegisterCounter); null when
  /// detached. Written only by set_metrics, before concurrent use.
  trace::MetricsRegistry::Counter* c_puts_ = nullptr;
  trace::MetricsRegistry::Counter* c_hits_ = nullptr;
  trace::MetricsRegistry::Counter* c_misses_ = nullptr;
  trace::MetricsRegistry::Counter* c_evictions_ = nullptr;
  trace::MetricsRegistry::Counter* c_evicted_entries_ = nullptr;
  trace::MetricsRegistry::Counter* c_bytes_evicted_ = nullptr;
  trace::MetricsRegistry::Counter* c_stale_put_drops_ = nullptr;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_WAREHOUSE_H_

#include "policy/policy_store.h"

namespace piye {
namespace policy {

Status PolicyStore::AddPolicy(PrivacyPolicy policy) {
  const std::string owner = policy.owner();
  if (owner.empty()) {
    return Status::InvalidArgument("policy must have an owner");
  }
  auto [it, inserted] = policies_.emplace(owner, std::move(policy));
  if (!inserted) {
    return Status::AlreadyExists("policy for '" + owner + "' already registered");
  }
  return Status::OK();
}

Result<const PrivacyPolicy*> PolicyStore::GetPolicy(const std::string& owner) const {
  auto it = policies_.find(owner);
  if (it == policies_.end()) {
    return Status::NotFound("no policy for owner '" + owner + "'");
  }
  return &it->second;
}

bool PolicyStore::HasPolicy(const std::string& owner) const {
  return policies_.count(owner) != 0;
}

std::vector<std::string> PolicyStore::PolicyOwners() const {
  std::vector<std::string> out;
  for (const auto& [owner, _] : policies_) out.push_back(owner);
  return out;
}

Status PolicyStore::AddView(const std::string& owner, PrivacyView view) {
  auto key = std::make_pair(owner, view.name());
  auto [it, inserted] = views_.emplace(key, std::move(view));
  if (!inserted) {
    return Status::AlreadyExists("view '" + key.second + "' already registered for '" +
                                 owner + "'");
  }
  return Status::OK();
}

Result<const PrivacyView*> PolicyStore::GetView(const std::string& owner,
                                                const std::string& view_name) const {
  auto it = views_.find({owner, view_name});
  if (it == views_.end()) {
    return Status::NotFound("no view '" + view_name + "' for owner '" + owner + "'");
  }
  return &it->second;
}

std::vector<const PrivacyView*> PolicyStore::ViewsForTable(
    const std::string& owner, const std::string& table) const {
  std::vector<const PrivacyView*> out;
  for (const auto& [key, view] : views_) {
    if (key.first == owner && view.table() == table) out.push_back(&view);
  }
  return out;
}

Status PolicyStore::AddPreference(UserPreference pref) {
  const std::string id = pref.subject_id();
  auto [it, inserted] = preferences_.emplace(id, std::move(pref));
  if (!inserted) {
    return Status::AlreadyExists("preference for '" + id + "' already registered");
  }
  return Status::OK();
}

Result<const UserPreference*> PolicyStore::GetPreference(
    const std::string& subject_id) const {
  auto it = preferences_.find(subject_id);
  if (it == preferences_.end()) {
    return Status::NotFound("no preference for subject '" + subject_id + "'");
  }
  return &it->second;
}

std::vector<const UserPreference*> PolicyStore::AllPreferences() const {
  std::vector<const UserPreference*> out;
  for (const auto& [_, pref] : preferences_) out.push_back(&pref);
  return out;
}

Disclosure PolicyStore::EffectiveDisclosure(const std::string& owner,
                                            const std::string& table,
                                            const std::string& column,
                                            const std::string& purpose,
                                            const std::string& recipient) const {
  auto policy = GetPolicy(owner);
  Disclosure out;
  if (policy.ok()) {
    out = (*policy)->Evaluate(table, column, purpose, recipient, lattice_);
  } else {
    // Without a registered policy nothing is disclosed (default deny).
    out.form = DisclosureForm::kDenied;
  }
  if (!out.allowed()) return out;
  for (const auto& [_, pref] : preferences_) {
    // Only preferences that mention the column (or "*") constrain it.
    bool mentions = false;
    for (const auto& rule : pref.rules()) {
      if (rule.data_category == column || rule.data_category == "*") {
        mentions = true;
        break;
      }
    }
    if (!mentions) continue;
    out = Meet(out, pref.Evaluate(column, purpose, lattice_));
    if (!out.allowed()) return out;
  }
  return out;
}

}  // namespace policy
}  // namespace piye

#include "policy/privacy_view.h"

#include "common/macros.h"
#include "relational/sql.h"
#include "xml/parser.h"

namespace piye {
namespace policy {

DisclosureForm PrivacyView::FormFor(const std::string& column) const {
  for (const auto& v : visible_) {
    if (v == column || v == "*") return DisclosureForm::kExact;
  }
  for (const auto& s : sensitive_) {
    if (s.name == column) return s.max_form;
  }
  return DisclosureForm::kDenied;
}

Result<relational::Table> PrivacyView::Apply(const relational::Table& base) const {
  PIYE_ASSIGN_OR_RETURN(relational::Table filtered,
                        relational::Executor::Filter(base, row_filter_));
  std::vector<std::string> keep;
  for (const auto& col : base.schema().columns()) {
    if (FormFor(col.name) != DisclosureForm::kDenied) keep.push_back(col.name);
  }
  return relational::Executor::Project(filtered, keep);
}

std::unique_ptr<xml::XmlNode> PrivacyView::ToXml() const {
  auto node = xml::XmlNode::Element("privacyView");
  node->SetAttr("name", name_);
  node->SetAttr("table", table_);
  for (const auto& v : visible_) node->AddElementWithText("visible", v);
  for (const auto& s : sensitive_) {
    xml::XmlNode* el = node->AddElement("sensitive");
    el->SetAttr("column", s.name);
    el->SetAttr("form", DisclosureFormToString(s.max_form));
  }
  if (row_filter_ != nullptr) {
    node->AddElementWithText("rowFilter", row_filter_->ToString());
  }
  return node;
}

Result<PrivacyView> PrivacyView::FromXml(const xml::XmlNode& node) {
  if (node.name() != "privacyView") {
    return Status::ParseError("expected <privacyView>, got <" + node.name() + ">");
  }
  const std::string* name = node.GetAttr("name");
  const std::string* table = node.GetAttr("table");
  if (name == nullptr || table == nullptr) {
    return Status::ParseError("<privacyView> missing name/table");
  }
  PrivacyView view(*name, *table);
  for (const xml::XmlNode* v : node.Children("visible")) {
    view.AddVisibleColumn(v->InnerText());
  }
  for (const xml::XmlNode* s : node.Children("sensitive")) {
    const std::string* column = s->GetAttr("column");
    if (column == nullptr) return Status::ParseError("<sensitive> missing column");
    SensitiveColumn sc;
    sc.name = *column;
    const std::string* form = s->GetAttr("form");
    if (form != nullptr) {
      PIYE_ASSIGN_OR_RETURN(sc.max_form, ParseDisclosureForm(*form));
    }
    view.AddSensitiveColumn(std::move(sc));
  }
  const xml::XmlNode* filter = node.FirstChild("rowFilter");
  if (filter != nullptr) {
    PIYE_ASSIGN_OR_RETURN(relational::ExprPtr expr,
                          relational::ParseExpression(filter->InnerText()));
    view.set_row_filter(std::move(expr));
  }
  return view;
}

Result<PrivacyView> PrivacyView::Parse(std::string_view xml_text) {
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  return FromXml(doc.root());
}

}  // namespace policy
}  // namespace piye

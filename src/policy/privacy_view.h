#ifndef PIYE_POLICY_PRIVACY_VIEW_H_
#define PIYE_POLICY_PRIVACY_VIEW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "policy/policy.h"
#include "relational/executor.h"
#include "relational/expression.h"
#include "relational/table.h"
#include "xml/node.h"

namespace piye {
namespace policy {

/// The second declarative language of Section 3: a *privacy view* defines
/// which part of a source table is private. It names the columns that remain
/// visible, the rows that are exportable, and the maximal disclosure form of
/// each sensitive column that is visible only in coarsened form.
struct SensitiveColumn {
  std::string name;
  DisclosureForm max_form = DisclosureForm::kAggregate;
};

class PrivacyView {
 public:
  PrivacyView() = default;
  PrivacyView(std::string name, std::string table)
      : name_(std::move(name)), table_(std::move(table)) {}

  const std::string& name() const { return name_; }
  const std::string& table() const { return table_; }
  const std::vector<std::string>& visible_columns() const { return visible_; }
  const std::vector<SensitiveColumn>& sensitive_columns() const { return sensitive_; }
  const relational::ExprPtr& row_filter() const { return row_filter_; }

  void AddVisibleColumn(std::string column) { visible_.push_back(std::move(column)); }
  void AddSensitiveColumn(SensitiveColumn col) { sensitive_.push_back(std::move(col)); }
  void set_row_filter(relational::ExprPtr filter) { row_filter_ = std::move(filter); }

  /// Maximal disclosure form this view allows for a column: kExact for
  /// visible columns, the declared form for sensitive ones, kDenied for
  /// columns the view does not mention.
  DisclosureForm FormFor(const std::string& column) const;

  /// Materializes the view over `base`: applies the row filter and projects
  /// away every column whose form is kDenied. Sensitive (coarsenable)
  /// columns are kept — downstream preservation coarsens them.
  Result<relational::Table> Apply(const relational::Table& base) const;

  /// XML form:
  ///   <privacyView name="public_compliance" table="compliance">
  ///     <visible>hmo</visible>
  ///     <sensitive column="rate" form="aggregate"/>
  ///     <rowFilter>year = 2001</rowFilter>
  ///   </privacyView>
  std::unique_ptr<xml::XmlNode> ToXml() const;
  static Result<PrivacyView> FromXml(const xml::XmlNode& node);
  static Result<PrivacyView> Parse(std::string_view xml_text);

 private:
  std::string name_;
  std::string table_;
  std::vector<std::string> visible_;
  std::vector<SensitiveColumn> sensitive_;
  relational::ExprPtr row_filter_;
};

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_PRIVACY_VIEW_H_

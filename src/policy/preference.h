#ifndef PIYE_POLICY_PREFERENCE_H_
#define PIYE_POLICY_PREFERENCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "policy/policy.h"
#include "xml/node.h"

namespace piye {
namespace policy {

/// One rule of the *user* preference language (APPEL-flavored): how a data
/// subject allows a category of their personal data to be shared — for which
/// purposes, in what maximal form, with what tolerable privacy loss.
struct PreferenceRule {
  std::string data_category;  ///< column/category name, "*" = everything
  std::vector<std::string> acceptable_purposes;  ///< "*" = any
  DisclosureForm max_form = DisclosureForm::kDenied;
  double max_privacy_loss = 0.0;
};

/// A data subject's privacy preferences. The policy formulation framework
/// stores these at the source and at the mediator; during query rewriting the
/// effective disclosure for an item is the *meet* (least permissive) of the
/// source policy's verdict and the subject's preference.
class UserPreference {
 public:
  UserPreference() = default;
  explicit UserPreference(std::string subject_id)
      : subject_id_(std::move(subject_id)) {}

  const std::string& subject_id() const { return subject_id_; }
  const std::vector<PreferenceRule>& rules() const { return rules_; }
  void AddRule(PreferenceRule rule) { rules_.push_back(std::move(rule)); }

  /// Most permissive form the subject accepts for (category, purpose), and
  /// the matching loss budget. No matching rule ⇒ denied.
  Disclosure Evaluate(const std::string& category, const std::string& purpose,
                      const PurposeLattice& lattice) const;

  /// True if a source policy rule's grant is consistent with (no more
  /// permissive than) these preferences — the APPEL-style policy/preference
  /// matching of Agrawal et al. [7] applied per rule.
  bool Accepts(const PolicyRule& rule, const PurposeLattice& lattice) const;

  /// XML form:
  ///   <preference subject="patient-17">
  ///     <allow category="dob" form="range" maxLoss="0.2">
  ///       <purpose>research</purpose>
  ///     </allow>
  ///   </preference>
  std::unique_ptr<xml::XmlNode> ToXml() const;
  static Result<UserPreference> FromXml(const xml::XmlNode& node);
  static Result<UserPreference> Parse(std::string_view xml_text);

 private:
  std::string subject_id_;
  std::vector<PreferenceRule> rules_;
};

/// Combines a source-policy verdict with a subject-preference verdict by
/// taking the least permissive form and smallest loss budget.
Disclosure Meet(const Disclosure& a, const Disclosure& b);

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_PREFERENCE_H_

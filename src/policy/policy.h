#ifndef PIYE_POLICY_POLICY_H_
#define PIYE_POLICY_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "policy/purpose.h"
#include "relational/expression.h"
#include "xml/node.h"

namespace piye {
namespace policy {

/// The disclosure forms of Section 3 ("exact value, aggregate, range, etc."),
/// ordered from least to most revealing. A rule grants a *maximum* form; the
/// query rewriter and preservation module coarsen results down to it.
enum class DisclosureForm {
  kDenied = 0,       ///< never disclosed
  kAggregate = 1,    ///< only through statistical aggregates
  kRange = 2,        ///< disclosed as a generalized range/interval
  kGeneralized = 3,  ///< disclosed after hierarchy generalization (k-anonymity)
  kExact = 4,        ///< full value
};

const char* DisclosureFormToString(DisclosureForm form);
Result<DisclosureForm> ParseDisclosureForm(const std::string& s);

/// Identifies a protected data item: a column of a table. "*" is a wildcard
/// on either component.
struct DataItemRef {
  std::string table;
  std::string column;

  bool Matches(const std::string& t, const std::string& c) const {
    return (table == "*" || table == t) && (column == "*" || column == c);
  }
  std::string ToString() const { return table + "." + column; }
};

/// One rule of the source policy language: who (recipients) may see what
/// (item) for which purposes, in what maximal form, under which row
/// condition, and with how much tolerable privacy loss.
struct PolicyRule {
  std::string id;
  bool deny = false;  ///< deny rules veto any matching grant
  DataItemRef item;
  std::vector<std::string> purposes;    ///< any-of, lattice-expanded; "*" = any
  std::vector<std::string> recipients;  ///< requester roles/org ids; "*" = any
  DisclosureForm form = DisclosureForm::kDenied;
  relational::ExprPtr condition;  ///< optional row-level guard (may be null)
  double max_privacy_loss = 1.0;  ///< in [0,1]; see inference/privacy_loss
};

/// The verdict of evaluating a request against a policy.
struct Disclosure {
  DisclosureForm form = DisclosureForm::kDenied;
  double max_privacy_loss = 0.0;
  /// Conjunction of the conditions of all applied grant rules (null if none).
  relational::ExprPtr condition;
  /// Ids of the rules that produced this verdict.
  std::vector<std::string> rule_ids;

  bool allowed() const { return form != DisclosureForm::kDenied; }
};

/// A source's privacy policy: an owner id plus a rule list, evaluated with
/// deny-overrides / default-deny combining.
class PrivacyPolicy {
 public:
  PrivacyPolicy() = default;
  PrivacyPolicy(std::string owner, std::vector<PolicyRule> rules)
      : owner_(std::move(owner)), rules_(std::move(rules)) {}

  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }
  const std::vector<PolicyRule>& rules() const { return rules_; }
  void AddRule(PolicyRule rule) { rules_.push_back(std::move(rule)); }

  /// Evaluates a request for (table, column) by `recipient` for `purpose`.
  ///
  /// Combining algorithm: a matching deny rule ⇒ kDenied; otherwise the
  /// *most* permissive form among matching grants, the *smallest* loss budget
  /// among them (conservative), and the AND of their row conditions. No
  /// matching rule ⇒ kDenied (default deny).
  Disclosure Evaluate(const std::string& table, const std::string& column,
                      const std::string& purpose, const std::string& recipient,
                      const PurposeLattice& lattice) const;

  /// Serializes to the XML policy language.
  std::unique_ptr<xml::XmlNode> ToXml() const;

  /// Parses the XML policy language:
  ///
  ///   <policy owner="HMO1">
  ///     <rule id="r1" effect="grant|deny">
  ///       <item table="compliance" column="rate"/>
  ///       <purpose>research</purpose>  (repeatable)
  ///       <recipient>*</recipient>     (repeatable)
  ///       <form>aggregate</form>
  ///       <condition>year = 2001</condition>  (optional, SQL expression)
  ///       <maxLoss>0.3</maxLoss>              (optional, default 1.0)
  ///     </rule>
  ///   </policy>
  static Result<PrivacyPolicy> FromXml(const xml::XmlNode& node);

  /// Parses policy XML text.
  static Result<PrivacyPolicy> Parse(std::string_view xml_text);

 private:
  std::string owner_;
  std::vector<PolicyRule> rules_;
};

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_POLICY_H_

#include "policy/p3p_shredder.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace piye {
namespace policy {

using relational::Column;
using relational::ColumnType;
using relational::Expression;
using relational::ExprPtr;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

namespace {

constexpr char kRules[] = "p3p_rules";
constexpr char kPurposes[] = "p3p_rule_purposes";
constexpr char kRecipients[] = "p3p_rule_recipients";

Schema RulesSchema() {
  return Schema{Column{"owner", ColumnType::kString},
                Column{"rule_id", ColumnType::kString},
                Column{"item_table", ColumnType::kString},
                Column{"item_column", ColumnType::kString},
                Column{"form", ColumnType::kInt64},
                Column{"deny", ColumnType::kBool},
                Column{"max_loss", ColumnType::kDouble}};
}

Schema LinkSchema(const char* value_column) {
  return Schema{Column{"owner", ColumnType::kString},
                Column{"rule_id", ColumnType::kString},
                Column{value_column, ColumnType::kString}};
}

Table* EnsureTable(relational::Catalog* catalog, const std::string& name,
                   Schema schema) {
  if (!catalog->HasTable(name)) catalog->PutTable(name, Table(std::move(schema)));
  return *catalog->GetMutableTable(name);
}

ExprPtr Eq(const char* column, const std::string& value) {
  return Expression::Binary(Expression::Op::kEq, Expression::ColumnRef(column),
                            Expression::Literal(Value::Str(value)));
}

}  // namespace

Status PolicyShredder::Shred(const PrivacyPolicy& policy,
                             relational::Catalog* catalog) {
  if (policy.owner().empty()) {
    return Status::InvalidArgument("policy must have an owner to be shredded");
  }
  Table* rules = EnsureTable(catalog, kRules, RulesSchema());
  Table* purposes = EnsureTable(catalog, kPurposes, LinkSchema("purpose"));
  Table* recipients = EnsureTable(catalog, kRecipients, LinkSchema("recipient"));
  for (const PolicyRule& rule : policy.rules()) {
    PIYE_RETURN_NOT_OK(rules->AppendRow(
        Row{Value::Str(policy.owner()), Value::Str(rule.id),
            Value::Str(rule.item.table), Value::Str(rule.item.column),
            Value::Int(static_cast<int64_t>(rule.form)), Value::Boolean(rule.deny),
            Value::Real(rule.max_privacy_loss)}));
    for (const auto& p : rule.purposes) {
      PIYE_RETURN_NOT_OK(purposes->AppendRow(
          Row{Value::Str(policy.owner()), Value::Str(rule.id), Value::Str(p)}));
    }
    for (const auto& r : rule.recipients) {
      PIYE_RETURN_NOT_OK(recipients->AppendRow(
          Row{Value::Str(policy.owner()), Value::Str(rule.id), Value::Str(r)}));
    }
  }
  return Status::OK();
}

Result<Disclosure> PolicyShredder::Evaluate(
    const relational::Catalog& catalog, const std::string& owner,
    const std::string& table, const std::string& column, const std::string& purpose,
    const std::string& recipient, const PurposeLattice& lattice) {
  Disclosure out;
  if (!catalog.HasTable(kRules)) return out;  // nothing shredded ⇒ default deny
  PIYE_ASSIGN_OR_RETURN(const Table* rules, catalog.GetTable(kRules));
  PIYE_ASSIGN_OR_RETURN(const Table* purposes, catalog.GetTable(kPurposes));
  PIYE_ASSIGN_OR_RETURN(const Table* recipients, catalog.GetTable(kRecipients));

  // 1. Item-matching rules of this owner:
  //    owner = :owner AND (item_table IN ('*', :table))
  //                  AND (item_column IN ('*', :column)).
  ExprPtr pred = Eq("owner", owner);
  pred = Expression::And(
      pred, Expression::In(Expression::ColumnRef("item_table"),
                           {Value::Str("*"), Value::Str(table)}));
  pred = Expression::And(
      pred, Expression::In(Expression::ColumnRef("item_column"),
                           {Value::Str("*"), Value::Str(column)}));
  PIYE_ASSIGN_OR_RETURN(Table candidate, relational::Executor::Filter(*rules, pred));

  // 2. The purposes the requester's purpose satisfies: its ancestor chain
  //    plus the wildcard.
  // (Direct equality matches even for purposes unknown to the lattice,
  // mirroring PurposeLattice::Satisfies.)
  std::vector<Value> satisfied{Value::Str("*"), Value::Str(purpose)};
  for (const auto& p : lattice.Ancestors(purpose)) satisfied.push_back(Value::Str(p));

  // purpose links that the request satisfies.
  PIYE_ASSIGN_OR_RETURN(
      Table purpose_hits,
      relational::Executor::Filter(
          *purposes,
          Expression::And(Eq("owner", owner),
                          Expression::In(Expression::ColumnRef("purpose"),
                                         satisfied))));
  // recipient links that match.
  PIYE_ASSIGN_OR_RETURN(
      Table recipient_hits,
      relational::Executor::Filter(
          *recipients,
          Expression::And(Eq("owner", owner),
                          Expression::In(Expression::ColumnRef("recipient"),
                                         {Value::Str("*"), Value::Str(recipient)}))));

  // 3. candidate ⋈ purpose_hits ⋈ recipient_hits on rule_id.
  PIYE_ASSIGN_OR_RETURN(Table with_purpose,
                        relational::Executor::HashJoin(candidate, purpose_hits,
                                                       "rule_id", "rule_id"));
  PIYE_ASSIGN_OR_RETURN(Table matching,
                        relational::Executor::HashJoin(with_purpose, recipient_hits,
                                                       "rule_id", "rule_id"));
  // A rule may join multiple times (several satisfied purposes); dedup.
  std::set<std::string> seen;
  PIYE_ASSIGN_OR_RETURN(size_t id_idx, matching.schema().IndexOf("rule_id"));
  PIYE_ASSIGN_OR_RETURN(size_t form_idx, matching.schema().IndexOf("form"));
  PIYE_ASSIGN_OR_RETURN(size_t deny_idx, matching.schema().IndexOf("deny"));
  PIYE_ASSIGN_OR_RETURN(size_t loss_idx, matching.schema().IndexOf("max_loss"));

  out.max_privacy_loss = 1.0;
  bool any_grant = false;
  for (const Row& row : matching.rows()) {
    if (!seen.insert(row[id_idx].AsString()).second) continue;
    if (row[deny_idx].AsBool()) {
      Disclosure denied;
      denied.rule_ids = {row[id_idx].AsString()};
      return denied;
    }
    any_grant = true;
    out.rule_ids.push_back(row[id_idx].AsString());
    out.form = std::max(out.form, static_cast<DisclosureForm>(row[form_idx].AsInt()));
    out.max_privacy_loss = std::min(out.max_privacy_loss, row[loss_idx].AsDouble());
  }
  if (!any_grant) {
    out.form = DisclosureForm::kDenied;
    out.max_privacy_loss = 0.0;
  }
  std::sort(out.rule_ids.begin(), out.rule_ids.end());
  return out;
}

size_t PolicyShredder::RuleCount(const relational::Catalog& catalog,
                                 const std::string& owner) {
  auto rules = catalog.GetTable(kRules);
  if (!rules.ok()) return 0;
  size_t n = 0;
  auto idx = (*rules)->schema().IndexOf("owner");
  if (!idx.ok()) return 0;
  for (const Row& row : (*rules)->rows()) {
    if (row[*idx].AsString() == owner) ++n;
  }
  return n;
}

}  // namespace policy
}  // namespace piye

#include "policy/preference.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "xml/parser.h"

namespace piye {
namespace policy {

Disclosure UserPreference::Evaluate(const std::string& category,
                                    const std::string& purpose,
                                    const PurposeLattice& lattice) const {
  Disclosure out;
  out.max_privacy_loss = 0.0;
  bool any = false;
  for (const PreferenceRule& rule : rules_) {
    if (rule.data_category != "*" && rule.data_category != category) continue;
    const bool purpose_ok = std::any_of(
        rule.acceptable_purposes.begin(), rule.acceptable_purposes.end(),
        [&](const std::string& p) { return lattice.Satisfies(purpose, p); });
    if (!purpose_ok) continue;
    any = true;
    out.form = std::max(out.form, rule.max_form);
    out.max_privacy_loss = std::max(out.max_privacy_loss, rule.max_privacy_loss);
  }
  if (!any) out.form = DisclosureForm::kDenied;
  return out;
}

bool UserPreference::Accepts(const PolicyRule& rule,
                             const PurposeLattice& lattice) const {
  if (rule.deny) return true;  // a deny rule can never over-disclose
  // Every purpose the policy rule grants must be acceptable at a form at
  // least as revealing as the rule's form.
  for (const std::string& purpose : rule.purposes) {
    const std::string probe = purpose == "*" ? "any" : purpose;
    const Disclosure d = Evaluate(rule.item.column, probe, lattice);
    if (d.form < rule.form) return false;
    if (d.max_privacy_loss < rule.max_privacy_loss) return false;
  }
  return true;
}

std::unique_ptr<xml::XmlNode> UserPreference::ToXml() const {
  auto node = xml::XmlNode::Element("preference");
  node->SetAttr("subject", subject_id_);
  for (const PreferenceRule& rule : rules_) {
    xml::XmlNode* allow = node->AddElement("allow");
    allow->SetAttr("category", rule.data_category);
    allow->SetAttr("form", DisclosureFormToString(rule.max_form));
    allow->SetAttr("maxLoss", strings::Format("%g", rule.max_privacy_loss));
    for (const auto& p : rule.acceptable_purposes) {
      allow->AddElementWithText("purpose", p);
    }
  }
  return node;
}

Result<UserPreference> UserPreference::FromXml(const xml::XmlNode& node) {
  if (node.name() != "preference") {
    return Status::ParseError("expected <preference>, got <" + node.name() + ">");
  }
  const std::string* subject = node.GetAttr("subject");
  UserPreference pref(subject != nullptr ? *subject : "");
  for (const xml::XmlNode* allow : node.Children("allow")) {
    PreferenceRule rule;
    const std::string* category = allow->GetAttr("category");
    rule.data_category = category != nullptr ? *category : "*";
    const std::string* form = allow->GetAttr("form");
    if (form == nullptr) return Status::ParseError("<allow> missing form");
    PIYE_ASSIGN_OR_RETURN(rule.max_form, ParseDisclosureForm(*form));
    const std::string* loss = allow->GetAttr("maxLoss");
    rule.max_privacy_loss =
        loss != nullptr ? std::strtod(loss->c_str(), nullptr) : 1.0;
    for (const xml::XmlNode* p : allow->Children("purpose")) {
      rule.acceptable_purposes.push_back(p->InnerText());
    }
    if (rule.acceptable_purposes.empty()) rule.acceptable_purposes.push_back("*");
    pref.AddRule(std::move(rule));
  }
  return pref;
}

Result<UserPreference> UserPreference::Parse(std::string_view xml_text) {
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  return FromXml(doc.root());
}

Disclosure Meet(const Disclosure& a, const Disclosure& b) {
  Disclosure out;
  out.form = std::min(a.form, b.form);
  out.max_privacy_loss = std::min(a.max_privacy_loss, b.max_privacy_loss);
  out.condition = relational::Expression::And(a.condition, b.condition);
  out.rule_ids = a.rule_ids;
  out.rule_ids.insert(out.rule_ids.end(), b.rule_ids.begin(), b.rule_ids.end());
  return out;
}

}  // namespace policy
}  // namespace piye

#include "policy/policy.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "relational/sql.h"
#include "xml/parser.h"

namespace piye {
namespace policy {

const char* DisclosureFormToString(DisclosureForm form) {
  switch (form) {
    case DisclosureForm::kDenied:
      return "denied";
    case DisclosureForm::kAggregate:
      return "aggregate";
    case DisclosureForm::kRange:
      return "range";
    case DisclosureForm::kGeneralized:
      return "generalized";
    case DisclosureForm::kExact:
      return "exact";
  }
  return "?";
}

Result<DisclosureForm> ParseDisclosureForm(const std::string& s) {
  const std::string t = strings::ToLower(strings::Trim(s));
  if (t == "denied") return DisclosureForm::kDenied;
  if (t == "aggregate") return DisclosureForm::kAggregate;
  if (t == "range") return DisclosureForm::kRange;
  if (t == "generalized") return DisclosureForm::kGeneralized;
  if (t == "exact") return DisclosureForm::kExact;
  return Status::ParseError("unknown disclosure form '" + s + "'");
}

namespace {

bool RuleMatches(const PolicyRule& rule, const std::string& table,
                 const std::string& column, const std::string& purpose,
                 const std::string& recipient, const PurposeLattice& lattice) {
  if (!rule.item.Matches(table, column)) return false;
  const bool purpose_ok =
      std::any_of(rule.purposes.begin(), rule.purposes.end(),
                  [&](const std::string& p) { return lattice.Satisfies(purpose, p); });
  if (!purpose_ok) return false;
  const bool recipient_ok =
      std::any_of(rule.recipients.begin(), rule.recipients.end(),
                  [&](const std::string& r) { return r == "*" || r == recipient; });
  return recipient_ok;
}

}  // namespace

Disclosure PrivacyPolicy::Evaluate(const std::string& table, const std::string& column,
                                   const std::string& purpose,
                                   const std::string& recipient,
                                   const PurposeLattice& lattice) const {
  Disclosure out;
  out.max_privacy_loss = 1.0;
  bool any_grant = false;
  for (const PolicyRule& rule : rules_) {
    if (!RuleMatches(rule, table, column, purpose, recipient, lattice)) continue;
    if (rule.deny) {
      // Deny overrides: stop immediately.
      Disclosure denied;
      denied.rule_ids = {rule.id};
      return denied;
    }
    any_grant = true;
    out.rule_ids.push_back(rule.id);
    out.form = std::max(out.form, rule.form);
    out.max_privacy_loss = std::min(out.max_privacy_loss, rule.max_privacy_loss);
    out.condition = relational::Expression::And(out.condition, rule.condition);
  }
  if (!any_grant) {
    out.form = DisclosureForm::kDenied;
    out.max_privacy_loss = 0.0;
  }
  return out;
}

std::unique_ptr<xml::XmlNode> PrivacyPolicy::ToXml() const {
  auto node = xml::XmlNode::Element("policy");
  node->SetAttr("owner", owner_);
  for (const PolicyRule& rule : rules_) {
    xml::XmlNode* r = node->AddElement("rule");
    r->SetAttr("id", rule.id);
    r->SetAttr("effect", rule.deny ? "deny" : "grant");
    xml::XmlNode* item = r->AddElement("item");
    item->SetAttr("table", rule.item.table);
    item->SetAttr("column", rule.item.column);
    for (const auto& p : rule.purposes) r->AddElementWithText("purpose", p);
    for (const auto& rec : rule.recipients) r->AddElementWithText("recipient", rec);
    if (!rule.deny) {
      r->AddElementWithText("form", DisclosureFormToString(rule.form));
      if (rule.condition != nullptr) {
        r->AddElementWithText("condition", rule.condition->ToString());
      }
      r->AddElementWithText("maxLoss", strings::Format("%g", rule.max_privacy_loss));
    }
  }
  return node;
}

Result<PrivacyPolicy> PrivacyPolicy::FromXml(const xml::XmlNode& node) {
  if (node.name() != "policy") {
    return Status::ParseError("expected <policy>, got <" + node.name() + ">");
  }
  PrivacyPolicy policy;
  const std::string* owner = node.GetAttr("owner");
  policy.set_owner(owner != nullptr ? *owner : "");
  for (const xml::XmlNode* r : node.Children("rule")) {
    PolicyRule rule;
    const std::string* id = r->GetAttr("id");
    rule.id = id != nullptr ? *id : strings::Format("rule%zu", policy.rules().size());
    const std::string* effect = r->GetAttr("effect");
    rule.deny = effect != nullptr && *effect == "deny";
    const xml::XmlNode* item = r->FirstChild("item");
    if (item == nullptr) return Status::ParseError("<rule> missing <item>");
    const std::string* table = item->GetAttr("table");
    const std::string* column = item->GetAttr("column");
    if (table == nullptr || column == nullptr) {
      return Status::ParseError("<item> missing table/column");
    }
    rule.item = {*table, *column};
    for (const xml::XmlNode* p : r->Children("purpose")) {
      rule.purposes.push_back(p->InnerText());
    }
    for (const xml::XmlNode* rec : r->Children("recipient")) {
      rule.recipients.push_back(rec->InnerText());
    }
    if (rule.purposes.empty()) rule.purposes.push_back("*");
    if (rule.recipients.empty()) rule.recipients.push_back("*");
    if (!rule.deny) {
      const xml::XmlNode* form = r->FirstChild("form");
      if (form == nullptr) {
        return Status::ParseError("grant <rule> missing <form>");
      }
      PIYE_ASSIGN_OR_RETURN(rule.form, ParseDisclosureForm(form->InnerText()));
      const xml::XmlNode* cond = r->FirstChild("condition");
      if (cond != nullptr) {
        PIYE_ASSIGN_OR_RETURN(rule.condition,
                              relational::ParseExpression(cond->InnerText()));
      }
      const xml::XmlNode* loss = r->FirstChild("maxLoss");
      if (loss != nullptr) {
        rule.max_privacy_loss = std::strtod(loss->InnerText().c_str(), nullptr);
      }
    }
    policy.AddRule(std::move(rule));
  }
  return policy;
}

Result<PrivacyPolicy> PrivacyPolicy::Parse(std::string_view xml_text) {
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  return FromXml(doc.root());
}

}  // namespace policy
}  // namespace piye

#ifndef PIYE_POLICY_POLICY_STORE_H_
#define PIYE_POLICY_POLICY_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "policy/policy.h"
#include "policy/preference.h"
#include "policy/privacy_view.h"

namespace piye {
namespace policy {

/// Registry of policies, views, and subject preferences for one deployment
/// site. Section 3 requires the store to exist both at each remote source
/// and inside the mediation engine (which re-verifies integrated results);
/// both instantiate this class.
class PolicyStore {
 public:
  /// Registers the policy of a source (keyed by the policy owner).
  Status AddPolicy(PrivacyPolicy policy);
  Result<const PrivacyPolicy*> GetPolicy(const std::string& owner) const;
  bool HasPolicy(const std::string& owner) const;
  std::vector<std::string> PolicyOwners() const;

  /// Registers a privacy view (keyed by source owner + view name).
  Status AddView(const std::string& owner, PrivacyView view);
  Result<const PrivacyView*> GetView(const std::string& owner,
                                     const std::string& view_name) const;
  /// All views an owner defined over a given base table.
  std::vector<const PrivacyView*> ViewsForTable(const std::string& owner,
                                                const std::string& table) const;

  /// Registers a data subject's preferences.
  Status AddPreference(UserPreference pref);
  Result<const UserPreference*> GetPreference(const std::string& subject_id) const;
  /// All registered preferences (the rewriter enforces the strictest).
  std::vector<const UserPreference*> AllPreferences() const;

  const PurposeLattice& lattice() const { return lattice_; }
  PurposeLattice& mutable_lattice() { return lattice_; }

  /// Effective disclosure for (owner, table, column, purpose, recipient):
  /// the source policy verdict met with every registered subject preference
  /// that constrains the column.
  Disclosure EffectiveDisclosure(const std::string& owner, const std::string& table,
                                 const std::string& column, const std::string& purpose,
                                 const std::string& recipient) const;

 private:
  PurposeLattice lattice_ = PurposeLattice::Default();
  std::map<std::string, PrivacyPolicy> policies_;
  std::map<std::pair<std::string, std::string>, PrivacyView> views_;
  std::map<std::string, UserPreference> preferences_;
};

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_POLICY_STORE_H_

#ifndef PIYE_POLICY_P3P_SHREDDER_H_
#define PIYE_POLICY_P3P_SHREDDER_H_

#include <string>

#include "common/result.h"
#include "policy/policy.h"
#include "relational/executor.h"

namespace piye {
namespace policy {

/// The server-centric P3P architecture of Agrawal et al. (ICDE 2004), which
/// the paper's Related Work singles out: XML privacy policies are *shredded*
/// into relational tables once, and preference checking becomes query
/// evaluation against those tables — letting a deployment reuse its database
/// machinery (indexes, auditing) for policy enforcement.
///
/// Shredded layout:
///   p3p_rules(owner, rule_id, item_table, item_column, form, deny, max_loss)
///   p3p_rule_purposes(owner, rule_id, purpose)
///   p3p_rule_recipients(owner, rule_id, recipient)
///
/// `Evaluate` reproduces PrivacyPolicy::Evaluate semantics (deny-overrides,
/// most-permissive grant, min budget, lattice-expanded purposes) purely via
/// relational operators over the shredded tables — the round-trip property
/// tests assert the two paths agree on arbitrary probes.
class PolicyShredder {
 public:
  /// Shreds `policy` into `catalog`, creating the three tables if needed and
  /// appending otherwise. Policies of several owners share the tables.
  static Status Shred(const PrivacyPolicy& policy, relational::Catalog* catalog);

  /// Relational re-implementation of PrivacyPolicy::Evaluate over the
  /// shredded tables.
  static Result<Disclosure> Evaluate(const relational::Catalog& catalog,
                                     const std::string& owner,
                                     const std::string& table,
                                     const std::string& column,
                                     const std::string& purpose,
                                     const std::string& recipient,
                                     const PurposeLattice& lattice);

  /// Number of shredded rules for `owner` (0 when none / tables absent).
  static size_t RuleCount(const relational::Catalog& catalog,
                          const std::string& owner);
};

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_P3P_SHREDDER_H_

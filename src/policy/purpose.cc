#include "policy/purpose.h"

namespace piye {
namespace policy {

PurposeLattice PurposeLattice::Default() {
  PurposeLattice lattice;
  // Building the fixed default tree: every parent precedes its children and
  // no name repeats, so AddPurpose cannot fail.
  (void)lattice.AddPurpose("any", "");
  (void)lattice.AddPurpose("healthcare", "any");
  (void)lattice.AddPurpose("treatment", "healthcare");
  (void)lattice.AddPurpose("disease-surveillance", "healthcare");
  (void)lattice.AddPurpose("research", "healthcare");
  (void)lattice.AddPurpose("quality-assessment", "healthcare");
  (void)lattice.AddPurpose("commercial", "any");
  (void)lattice.AddPurpose("marketing", "commercial");
  (void)lattice.AddPurpose("national-security", "any");
  (void)lattice.AddPurpose("outbreak-control", "disease-surveillance");
  return lattice;
}

Status PurposeLattice::AddPurpose(const std::string& name, const std::string& parent) {
  if (name.empty() || name == "*") {
    return Status::InvalidArgument("invalid purpose name");
  }
  if (!parent.empty() && parent_.count(parent) == 0) {
    return Status::NotFound("unknown parent purpose '" + parent + "'");
  }
  auto [it, inserted] = parent_.emplace(name, parent);
  if (!inserted && it->second != parent) {
    return Status::AlreadyExists("purpose '" + name + "' already has a parent");
  }
  return Status::OK();
}

bool PurposeLattice::Satisfies(const std::string& requester_purpose,
                               const std::string& allowed_purpose) const {
  if (allowed_purpose == "*") return true;
  if (requester_purpose == allowed_purpose) return true;
  // Walk up from the requester purpose looking for the allowed one.
  auto it = parent_.find(requester_purpose);
  if (it == parent_.end()) return false;
  std::string cur = requester_purpose;
  while (true) {
    auto pit = parent_.find(cur);
    if (pit == parent_.end() || pit->second.empty()) return false;
    cur = pit->second;
    if (cur == allowed_purpose) return true;
  }
}

std::vector<std::string> PurposeLattice::Ancestors(const std::string& name) const {
  std::vector<std::string> out;
  std::string cur = name;
  while (parent_.count(cur) != 0) {
    out.push_back(cur);
    const std::string& p = parent_.at(cur);
    if (p.empty()) break;
    cur = p;
  }
  return out;
}

}  // namespace policy
}  // namespace piye

#ifndef PIYE_POLICY_PURPOSE_H_
#define PIYE_POLICY_PURPOSE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace piye {
namespace policy {

/// A hierarchy (forest) of purposes, e.g.:
///
///   any ─┬─ healthcare ─┬─ treatment
///        │              ├─ disease-surveillance
///        │              └─ research
///        └─ commercial ─── marketing
///
/// A requester purpose `p` satisfies an allowed purpose `a` when p == a or p
/// is a descendant of a (requesting for "treatment" satisfies a policy that
/// allows "healthcare"). Purposes unknown to the lattice never satisfy
/// anything except the wildcard "*".
class PurposeLattice {
 public:
  /// Builds the default healthcare-flavored lattice used by the examples.
  static PurposeLattice Default();

  /// Adds a purpose under `parent` ("" for a root). Re-adding with a new
  /// parent is an error.
  Status AddPurpose(const std::string& name, const std::string& parent);

  bool Contains(const std::string& name) const { return parent_.count(name) != 0; }

  /// True if `requester_purpose` satisfies `allowed_purpose` (see class doc).
  bool Satisfies(const std::string& requester_purpose,
                 const std::string& allowed_purpose) const;

  /// Chain from `name` up to its root, inclusive.
  std::vector<std::string> Ancestors(const std::string& name) const;

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace policy
}  // namespace piye

#endif  // PIYE_POLICY_PURPOSE_H_

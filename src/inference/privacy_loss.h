#ifndef PIYE_INFERENCE_PRIVACY_LOSS_H_
#define PIYE_INFERENCE_PRIVACY_LOSS_H_

#include <vector>

#include "inference/constraint.h"

namespace piye {
namespace inference {

/// Privacy metrics (the "Privacy metrics" research issue of Section 4): the
/// paper asks for probabilistic notions of conditional loss — "decreasing
/// the range of values an item could have, or increasing the probability of
/// accuracy of an estimate" — rather than boolean revealed/not-revealed.
namespace loss {

/// Interval-narrowing loss in [0,1]: how much of the prior range the
/// adversary eliminated. 0 = learned nothing; 1 = pinned exactly.
double IntervalLoss(const Interval& prior, const Interval& posterior);

/// Loss in bits for a uniform prior/posterior over the intervals:
/// log2(prior.width / posterior.width), floored at 0 (never negative).
double IntervalLossBits(const Interval& prior, const Interval& posterior);

/// Aggregated privacy loss of a set of items (the mediator's Privacy
/// Control aggregates per-source losses this way): the maximum per-item
/// loss — privacy is judged by the worst-exposed individual, not the
/// average.
double AggregateLoss(const std::vector<double>& item_losses);

/// Mean loss, reported alongside the max for diagnostics.
double MeanLoss(const std::vector<double>& item_losses);

/// The R-U confidentiality map coordinate (Duncan et al. [23]): returns
/// disclosure risk R = max item loss and takes utility U in [0,1] from the
/// caller; score = U - R (higher is a better release).
double RUScore(double disclosure_risk, double data_utility);

}  // namespace loss
}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_PRIVACY_LOSS_H_

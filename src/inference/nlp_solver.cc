#include "inference/nlp_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace piye {
namespace inference {

namespace {

/// Subgradient of the total violation f(x) = sum_c max(0, breach_c) at x
/// (added into *grad): each violated constraint contributes ±∇s_c with unit
/// weight, matching the piecewise-linear objective the Polyak step assumes.
void AddViolationSubgradient(const ConstraintSystem& sys, const std::vector<double>& x,
                             std::vector<double>* grad) {
  for (const auto& c : sys.linear()) {
    double s = 0.0;
    for (const auto& [v, a] : c.terms) s += a * x[v];
    double sign = 0.0;
    if (s < c.lo) {
      sign = -1.0;
    } else if (s > c.hi) {
      sign = 1.0;
    } else {
      continue;
    }
    for (const auto& [v, a] : c.terms) (*grad)[v] += sign * a;
  }
  for (const auto& c : sys.quadratic()) {
    double s = 0.0;
    for (size_t v : c.vars) {
      const double d = x[v] - c.center;
      s += d * d;
    }
    double sign = 0.0;
    if (s < c.lo) {
      sign = -1.0;
    } else if (s > c.hi) {
      sign = 1.0;
    } else {
      continue;
    }
    for (size_t v : c.vars) (*grad)[v] += sign * 2.0 * (x[v] - c.center);
  }
}

}  // namespace

// Restores feasibility by subgradient descent on the total violation with
// Polyak steps (t = f(x)/||g||^2 — exact for the known optimum f* = 0).
// Returns the final violation.
static double Restore(const ConstraintSystem& sys, std::vector<double>* x,
                      std::vector<double>* grad, double tol) {
  const size_t n = x->size();
  for (size_t iter = 0; iter < 300; ++iter) {
    const double violation = sys.TotalViolation(*x);
    if (violation < tol) return violation;
    std::fill(grad->begin(), grad->end(), 0.0);
    AddViolationSubgradient(sys, *x, grad);
    double gnorm2 = 0.0;
    for (size_t v = 0; v < n; ++v) {
      const Interval& d = sys.domain(v);
      if (d.lo == d.hi) (*grad)[v] = 0.0;  // fixed variables cannot move
      gnorm2 += (*grad)[v] * (*grad)[v];
    }
    if (gnorm2 < 1e-18) return violation;
    const double t = violation / gnorm2;
    for (size_t v = 0; v < n; ++v) {
      const Interval& d = sys.domain(v);
      if (d.lo == d.hi) continue;
      (*x)[v] -= t * (*grad)[v];
      (*x)[v] = std::clamp((*x)[v], d.lo, d.hi);
    }
  }
  return sys.TotalViolation(*x);
}

double NlpBoundSolver::Optimize(size_t target, int direction, Rng* rng,
                                std::vector<double>* best_point) const {
  const size_t n = system_->num_variables();
  double best = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x(n), grad(n);

  // Projected descent: alternate an objective step on the target variable
  // with feasibility restoration (violation-gradient descent). Each feasible
  // iterate is a witness point, so the reported bound is always *attained*.
  for (size_t restart = 0; restart < options_.restarts; ++restart) {
    for (size_t v = 0; v < n; ++v) {
      const Interval& d = system_->domain(v);
      x[v] = d.lo == d.hi ? d.lo : rng->NextUniform(d.lo, d.hi);
    }
    double step = options_.initial_step;
    const size_t iterations = direction == 0 ? 1 : options_.iterations;
    for (size_t iter = 0; iter < iterations; ++iter) {
      if (direction != 0) {
        const Interval& d = system_->domain(target);
        x[target] = std::clamp(x[target] + direction * step, d.lo, d.hi);
      }
      const double violation =
          Restore(*system_, &x, &grad, options_.feasibility_tol);
      if (violation < options_.feasibility_tol) {
        const double value = x[target];
        if (std::isnan(best) || (direction > 0 && value > best) ||
            (direction < 0 && value < best)) {
          best = direction == 0 ? 0.0 : value;
          *best_point = x;
          if (direction == 0) return best;
        }
      }
      step = std::max(step * 0.995, 0.01);
    }
  }
  return best;
}

Result<BoundResult> NlpBoundSolver::Bound(size_t target) const {
  if (target >= system_->num_variables()) {
    return Status::OutOfRange("target variable out of range");
  }
  Rng rng(seed_ + target * 7919);
  std::vector<double> point;
  BoundResult out;
  const double lo = Optimize(target, -1, &rng, &point);
  const double hi = Optimize(target, +1, &rng, &point);
  if (std::isnan(lo) || std::isnan(hi)) {
    out.feasible = false;
    return out;
  }
  out.feasible = true;
  out.lower = lo;
  out.upper = hi;
  return out;
}

Result<std::vector<double>> NlpBoundSolver::FindFeasiblePoint() const {
  Rng rng(seed_);
  std::vector<double> point(system_->num_variables(), 0.0);
  const double r = Optimize(0, 0, &rng, &point);
  if (std::isnan(r)) {
    return Status::NotFound("no feasible point found");
  }
  return point;
}

}  // namespace inference
}  // namespace piye

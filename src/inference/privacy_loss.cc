#include "inference/privacy_loss.h"

#include <algorithm>
#include <cmath>

namespace piye {
namespace inference {
namespace loss {

double IntervalLoss(const Interval& prior, const Interval& posterior) {
  if (prior.width() <= 0.0) return 0.0;
  const double post = std::clamp(posterior.width(), 0.0, prior.width());
  return 1.0 - post / prior.width();
}

double IntervalLossBits(const Interval& prior, const Interval& posterior) {
  if (prior.width() <= 0.0) return 0.0;
  const double post = std::max(posterior.width(), 1e-12);
  return std::max(0.0, std::log2(prior.width() / post));
}

double AggregateLoss(const std::vector<double>& item_losses) {
  double mx = 0.0;
  for (double l : item_losses) mx = std::max(mx, l);
  return mx;
}

double MeanLoss(const std::vector<double>& item_losses) {
  if (item_losses.empty()) return 0.0;
  double total = 0.0;
  for (double l : item_losses) total += l;
  return total / static_cast<double>(item_losses.size());
}

double RUScore(double disclosure_risk, double data_utility) {
  return data_utility - disclosure_risk;
}

}  // namespace loss
}  // namespace inference
}  // namespace piye

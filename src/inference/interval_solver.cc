#include "inference/interval_solver.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace piye {
namespace inference {

namespace {

/// Pairwise differences of linear constraints with small support — the
/// Fourier–Motzkin step that lets bounds consistency see through difference
/// attacks (e.g. SUM(0..n) − SUM(0..n-1) pins record n, which plain
/// per-constraint propagation cannot derive).
std::vector<LinearConstraint> DerivedDifferences(
    const std::vector<LinearConstraint>& constraints, size_t max_support) {
  std::vector<LinearConstraint> out;
  for (size_t i = 0; i < constraints.size(); ++i) {
    for (size_t j = 0; j < constraints.size(); ++j) {
      if (i == j) continue;
      const auto& a = constraints[i];
      const auto& b = constraints[j];
      // diff = a - b.
      std::map<size_t, double> coeffs;
      for (const auto& [v, coeff] : a.terms) coeffs[v] += coeff;
      for (const auto& [v, coeff] : b.terms) coeffs[v] -= coeff;
      LinearConstraint diff;
      for (const auto& [v, coeff] : coeffs) {
        if (std::fabs(coeff) > 1e-12) diff.terms.emplace_back(v, coeff);
      }
      if (diff.terms.empty() || diff.terms.size() > max_support ||
          diff.terms.size() >= std::min(a.terms.size(), b.terms.size())) {
        continue;  // no cancellation happened — nothing gained
      }
      diff.lo = a.lo - b.hi;
      diff.hi = a.hi - b.lo;
      out.push_back(std::move(diff));
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Interval>> IntervalPropagator::Propagate(size_t max_rounds) const {
  std::vector<Interval> dom;
  dom.reserve(system_->num_variables());
  for (size_t v = 0; v < system_->num_variables(); ++v) {
    dom.push_back(system_->domain(v));
  }
  // Augment with difference constraints (support capped so the quadratic
  // pair enumeration stays cheap and only genuinely tighter facts survive).
  std::vector<LinearConstraint> linear = system_->linear();
  const auto derived = DerivedDifferences(linear, /*max_support=*/6);
  linear.insert(linear.end(), derived.begin(), derived.end());
  const double kEps = 1e-12;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    // Linear constraints: lo <= sum a_i x_i <= hi.
    for (const auto& c : linear) {
      // Interval of the full sum.
      for (size_t t = 0; t < c.terms.size(); ++t) {
        const auto [var, coeff] = c.terms[t];
        if (coeff == 0.0) continue;
        // Sum of the other terms' interval.
        double rest_lo = 0.0, rest_hi = 0.0;
        for (size_t u = 0; u < c.terms.size(); ++u) {
          if (u == t) continue;
          const auto [v2, a2] = c.terms[u];
          const double a_lo = a2 >= 0 ? a2 * dom[v2].lo : a2 * dom[v2].hi;
          const double a_hi = a2 >= 0 ? a2 * dom[v2].hi : a2 * dom[v2].lo;
          rest_lo += a_lo;
          rest_hi += a_hi;
        }
        // coeff * x in [c.lo - rest_hi, c.hi - rest_lo].
        double t_lo = c.lo - rest_hi;
        double t_hi = c.hi - rest_lo;
        double x_lo, x_hi;
        if (coeff > 0) {
          x_lo = t_lo / coeff;
          x_hi = t_hi / coeff;
        } else {
          x_lo = t_hi / coeff;
          x_hi = t_lo / coeff;
        }
        if (x_lo > dom[var].lo + kEps) {
          dom[var].lo = x_lo;
          changed = true;
        }
        if (x_hi < dom[var].hi - kEps) {
          dom[var].hi = x_hi;
          changed = true;
        }
        if (dom[var].empty()) {
          return Status::InvalidArgument(
              "constraint system is infeasible (variable '" + system_->name(var) +
              "' has empty domain)");
        }
      }
    }
    // Quadratic constraints: lo <= sum (x_i - m)^2 <= hi.
    for (const auto& c : system_->quadratic()) {
      // Interval of each squared term.
      auto sq_interval = [&](size_t v) {
        const double a = dom[v].lo - c.center;
        const double b = dom[v].hi - c.center;
        const double hi = std::max(a * a, b * b);
        const double lo = (a <= 0.0 && b >= 0.0) ? 0.0 : std::min(a * a, b * b);
        return Interval{lo, hi};
      };
      for (size_t t = 0; t < c.vars.size(); ++t) {
        double rest_lo = 0.0, rest_hi = 0.0;
        for (size_t u = 0; u < c.vars.size(); ++u) {
          if (u == t) continue;
          const Interval s = sq_interval(c.vars[u]);
          rest_lo += s.lo;
          rest_hi += s.hi;
        }
        // (x - m)^2 in [max(0, lo - rest_hi), hi - rest_lo].
        const double term_hi = c.hi - rest_lo;
        if (term_hi < -kEps) {
          return Status::InvalidArgument("constraint system is infeasible (quadratic)");
        }
        const double r = std::sqrt(std::max(0.0, term_hi));
        const size_t var = c.vars[t];
        // |x - m| <= r.
        if (c.center - r > dom[var].lo + kEps) {
          dom[var].lo = c.center - r;
          changed = true;
        }
        if (c.center + r < dom[var].hi - kEps) {
          dom[var].hi = c.center + r;
          changed = true;
        }
        // A positive lower bound on the term only prunes when the domain is
        // entirely on one side of the center.
        const double term_lo = std::max(0.0, c.lo - rest_hi);
        if (term_lo > 0.0) {
          const double r_lo = std::sqrt(term_lo);
          if (dom[var].lo >= c.center && c.center + r_lo > dom[var].lo + kEps) {
            dom[var].lo = c.center + r_lo;
            changed = true;
          }
          if (dom[var].hi <= c.center && c.center - r_lo < dom[var].hi - kEps) {
            dom[var].hi = c.center - r_lo;
            changed = true;
          }
        }
        if (dom[var].empty()) {
          return Status::InvalidArgument(
              "constraint system is infeasible (variable '" + system_->name(var) +
              "' has empty domain)");
        }
      }
    }
    if (!changed) break;
  }
  return dom;
}

}  // namespace inference
}  // namespace piye

#ifndef PIYE_INFERENCE_NLP_SOLVER_H_
#define PIYE_INFERENCE_NLP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "inference/constraint.h"

namespace piye {
namespace inference {

/// Attained bounds on one variable over the feasible set.
struct BoundResult {
  double lower = 0.0;
  double upper = 0.0;
  bool feasible = false;  ///< a feasible point was found at all
};

/// Multistart penalty-method non-linear programming solver — the "Non-Linear
/// Programming technique" HMO1 uses in Figure 1 to turn published aggregates
/// into tight intervals on its competitors' sensitive values.
///
/// For min/max of a target variable it runs projected descent from
/// `restarts` random starting points: each iteration takes an objective step
/// on the target variable and then restores feasibility by descending the
/// constraint-violation gradient. Every recorded iterate is feasible
/// (violation below `feasibility_tol`), so the returned interval is an inner
/// (attained) approximation of the true range; combine with
/// IntervalPropagator for the sound outer box.
class NlpBoundSolver {
 public:
  struct Options {
    size_t restarts = 24;
    size_t iterations = 1200;    ///< objective steps per restart
    double initial_step = 1.0;   ///< objective step size (decays to 0.01)
    double feasibility_tol = 1e-4;
  };

  NlpBoundSolver(const ConstraintSystem* system, uint64_t seed)
      : system_(system), seed_(seed), options_(Options()) {}
  NlpBoundSolver(const ConstraintSystem* system, uint64_t seed, Options options)
      : system_(system), seed_(seed), options_(options) {}

  /// Attained [min, max] of variable `target`.
  Result<BoundResult> Bound(size_t target) const;

  /// Any feasible point (minimizes pure violation); error if none found.
  Result<std::vector<double>> FindFeasiblePoint() const;

 private:
  /// direction: -1 minimizes x_target, +1 maximizes, 0 pure feasibility.
  /// Returns the best feasible target value (or NaN) and best point.
  double Optimize(size_t target, int direction, Rng* rng,
                  std::vector<double>* best_point) const;

  const ConstraintSystem* system_;
  uint64_t seed_;
  Options options_;
};

}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_NLP_SOLVER_H_

#include "inference/snooping_attack.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "inference/interval_solver.h"

namespace piye {
namespace inference {

PublishedAggregates PublishedAggregates::Figure1() {
  PublishedAggregates p;
  p.measures = {"HbA1c", "LipidProfile", "EyeExam"};
  p.parties = {"HMO1", "HMO2", "HMO3", "HMO4"};
  // Figure 1(c) publishes the means to one decimal; Figure 1(a) rounds
  // further for display. We use the 1(c) precision.
  p.measure_mean = {83.0, 54.1, 45.4};
  p.measure_sigma = {5.7, 4.7, 2.0};
  p.party_mean = {58.0, 65.0, 60.0, 60.3};
  p.tolerance = 0.05;  // published to one decimal place
  return p;
}

AttackerKnowledge AttackerKnowledge::Figure1() {
  AttackerKnowledge a;
  a.party_index = 0;  // HMO1
  a.own_values = {75.0, 56.0, 43.0};
  return a;
}

double AttackResult::MeanUnknownWidth(size_t attacker_party) const {
  double total = 0.0;
  size_t count = 0;
  for (const auto& row : intervals) {
    for (size_t p = 0; p < row.size(); ++p) {
      if (p == attacker_party) continue;
      total += row[p].width();
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

Result<ConstraintSystem> SnoopingAttack::BuildSystem(
    const PublishedAggregates& published, const AttackerKnowledge& attacker) {
  const size_t num_measures = published.measures.size();
  const size_t num_parties = published.parties.size();
  if (published.measure_mean.size() != num_measures ||
      published.measure_sigma.size() != num_measures ||
      published.party_mean.size() != num_parties) {
    return Status::InvalidArgument("aggregate vector sizes do not match labels");
  }
  if (attacker.party_index >= num_parties ||
      attacker.own_values.size() != num_measures) {
    return Status::InvalidArgument("attacker knowledge does not match aggregates");
  }
  ConstraintSystem sys;
  // Variable (m, p) at index m * num_parties + p.
  for (size_t m = 0; m < num_measures; ++m) {
    for (size_t p = 0; p < num_parties; ++p) {
      sys.AddVariable(published.measures[m] + "/" + published.parties[p],
                      published.value_lo, published.value_hi);
    }
  }
  for (size_t m = 0; m < num_measures; ++m) {
    PIYE_RETURN_NOT_OK(sys.FixVariable(m * num_parties + attacker.party_index,
                                       attacker.own_values[m]));
  }
  // Per-measure mean and sigma across parties.
  for (size_t m = 0; m < num_measures; ++m) {
    std::vector<size_t> vars;
    for (size_t p = 0; p < num_parties; ++p) vars.push_back(m * num_parties + p);
    sys.AddMeanConstraint(vars, published.measure_mean[m], published.tolerance);
    sys.AddStdDevConstraint(vars, published.measure_mean[m], published.measure_sigma[m],
                            published.tolerance);
  }
  // Per-party mean across measures.
  for (size_t p = 0; p < num_parties; ++p) {
    std::vector<size_t> vars;
    for (size_t m = 0; m < num_measures; ++m) vars.push_back(m * num_parties + p);
    sys.AddMeanConstraint(vars, published.party_mean[p], published.tolerance);
  }
  return sys;
}

Result<AttackResult> SnoopingAttack::Run(const PublishedAggregates& published,
                                         const AttackerKnowledge& attacker) const {
  PIYE_ASSIGN_OR_RETURN(ConstraintSystem sys, BuildSystem(published, attacker));
  const size_t num_measures = published.measures.size();
  const size_t num_parties = published.parties.size();

  // Sound outer box from propagation.
  IntervalPropagator propagator(&sys);
  PIYE_ASSIGN_OR_RETURN(std::vector<Interval> outer, propagator.Propagate());

  NlpBoundSolver solver(&sys, seed_, options_);
  AttackResult result;
  result.prior_width = published.value_hi - published.value_lo;
  result.intervals.assign(num_measures, std::vector<Interval>(num_parties));
  for (size_t m = 0; m < num_measures; ++m) {
    for (size_t p = 0; p < num_parties; ++p) {
      const size_t var = m * num_parties + p;
      if (p == attacker.party_index) {
        result.intervals[m][p] = {attacker.own_values[m], attacker.own_values[m]};
        continue;
      }
      PIYE_ASSIGN_OR_RETURN(BoundResult bound, solver.Bound(var));
      Interval iv;
      if (bound.feasible) {
        // NLP gives attained (inner) bounds; intersect the midpoint-safe
        // union with the sound outer box to stay conservative but tight.
        iv.lo = std::max(outer[var].lo, std::min(bound.lower, bound.upper));
        iv.hi = std::min(outer[var].hi, std::max(bound.lower, bound.upper));
      } else {
        iv = outer[var];
      }
      result.intervals[m][p] = iv;
    }
  }
  return result;
}

}  // namespace inference
}  // namespace piye

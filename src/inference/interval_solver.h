#ifndef PIYE_INFERENCE_INTERVAL_SOLVER_H_
#define PIYE_INFERENCE_INTERVAL_SOLVER_H_

#include <vector>

#include "common/result.h"
#include "inference/constraint.h"

namespace piye {
namespace inference {

/// Sound interval (bounds-consistency) propagation over a ConstraintSystem.
///
/// For each linear constraint, each variable's bounds are tightened against
/// the interval evaluation of the remaining terms; quadratic constraints
/// tighten |x - center| from the residual budget. Iterated to fixpoint, this
/// yields an *outer* approximation of the feasible box: the true feasible
/// values always lie inside the returned intervals. (The NLP solver
/// complements it with attained, inner bounds.)
class IntervalPropagator {
 public:
  explicit IntervalPropagator(const ConstraintSystem* system) : system_(system) {}

  /// Propagates to fixpoint (or `max_rounds`). Returns the tightened domain
  /// of every variable, or kPrivacyViolation-free InvalidArgument if the
  /// system is infeasible (some domain became empty — the published
  /// aggregates are inconsistent).
  Result<std::vector<Interval>> Propagate(size_t max_rounds = 64) const;

 private:
  const ConstraintSystem* system_;
};

}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_INTERVAL_SOLVER_H_

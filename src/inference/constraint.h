#ifndef PIYE_INFERENCE_CONSTRAINT_H_
#define PIYE_INFERENCE_CONSTRAINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace piye {
namespace inference {

/// A closed interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
  bool empty() const { return lo > hi; }
};

/// lo <= sum_i a_i * x_i <= hi.
struct LinearConstraint {
  std::vector<std::pair<size_t, double>> terms;  ///< (variable, coefficient)
  double lo = 0.0;
  double hi = 0.0;
};

/// lo <= sum_i (x_i - center)^2 <= hi — the form a published standard
/// deviation takes once the mean is public: n*sigma^2 = sum (x_i - mean)^2.
struct QuadraticConstraint {
  std::vector<size_t> vars;
  double center = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// The adversary's knowledge base in the Figure 1 model: box-bounded
/// unknowns (the other parties' sensitive values), exactly known values (the
/// snooper's own data), and the constraints induced by published aggregates.
/// Both the attack (SnoopingAttack) and the defense (the mediator's
/// inference auditor) build one of these.
class ConstraintSystem {
 public:
  /// Adds a variable with the given prior domain; returns its index.
  size_t AddVariable(std::string name, double lo, double hi);

  /// Pins a variable to an exact value (attacker's own data).
  Status FixVariable(size_t var, double value);

  void AddLinear(LinearConstraint c) { linear_.push_back(std::move(c)); }
  void AddQuadratic(QuadraticConstraint c) { quadratic_.push_back(std::move(c)); }

  /// Convenience: mean of `vars` lies in [mean-tol, mean+tol].
  void AddMeanConstraint(const std::vector<size_t>& vars, double mean, double tol);

  /// Convenience: population stddev of `vars` (about the *published* mean)
  /// lies in [sigma-tol, sigma+tol].
  void AddStdDevConstraint(const std::vector<size_t>& vars, double mean, double sigma,
                           double tol);

  size_t num_variables() const { return domains_.size(); }
  const Interval& domain(size_t var) const { return domains_[var]; }
  const std::string& name(size_t var) const { return names_[var]; }
  const std::vector<LinearConstraint>& linear() const { return linear_; }
  const std::vector<QuadraticConstraint>& quadratic() const { return quadratic_; }

  /// Sum of constraint violations at a point (0 iff feasible within
  /// tolerances). Used by the penalty optimizer and as a feasibility check.
  double TotalViolation(const std::vector<double>& x) const;

 private:
  std::vector<Interval> domains_;
  std::vector<std::string> names_;
  std::vector<LinearConstraint> linear_;
  std::vector<QuadraticConstraint> quadratic_;
};

}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_CONSTRAINT_H_

#include "inference/constraint.h"

#include <cmath>

#include "common/strings.h"

namespace piye {
namespace inference {

size_t ConstraintSystem::AddVariable(std::string name, double lo, double hi) {
  domains_.push_back({lo, hi});
  names_.push_back(std::move(name));
  return domains_.size() - 1;
}

Status ConstraintSystem::FixVariable(size_t var, double value) {
  if (var >= domains_.size()) {
    return Status::OutOfRange(strings::Format("variable %zu out of range", var));
  }
  domains_[var] = {value, value};
  return Status::OK();
}

void ConstraintSystem::AddMeanConstraint(const std::vector<size_t>& vars, double mean,
                                         double tol) {
  // Stored in *sum* form (unit coefficients) so that overlapping aggregate
  // constraints cancel term-by-term under the propagator's pairwise
  // differencing — the mechanism that catches difference attacks.
  LinearConstraint c;
  const double n = static_cast<double>(vars.size());
  for (size_t v : vars) c.terms.emplace_back(v, 1.0);
  c.lo = n * (mean - tol);
  c.hi = n * (mean + tol);
  AddLinear(std::move(c));
}

void ConstraintSystem::AddStdDevConstraint(const std::vector<size_t>& vars,
                                           double mean, double sigma, double tol) {
  QuadraticConstraint c;
  c.vars = vars;
  c.center = mean;
  const double n = static_cast<double>(vars.size());
  const double lo_sigma = std::max(0.0, sigma - tol);
  const double hi_sigma = sigma + tol;
  c.lo = n * lo_sigma * lo_sigma;
  c.hi = n * hi_sigma * hi_sigma;
  AddQuadratic(std::move(c));
}

double ConstraintSystem::TotalViolation(const std::vector<double>& x) const {
  double total = 0.0;
  for (const auto& c : linear_) {
    double s = 0.0;
    for (const auto& [v, a] : c.terms) s += a * x[v];
    if (s < c.lo) total += c.lo - s;
    if (s > c.hi) total += s - c.hi;
  }
  for (const auto& c : quadratic_) {
    double s = 0.0;
    for (size_t v : c.vars) {
      const double d = x[v] - c.center;
      s += d * d;
    }
    if (s < c.lo) total += c.lo - s;
    if (s > c.hi) total += s - c.hi;
  }
  for (size_t v = 0; v < domains_.size(); ++v) {
    if (x[v] < domains_[v].lo) total += domains_[v].lo - x[v];
    if (x[v] > domains_[v].hi) total += x[v] - domains_[v].hi;
  }
  return total;
}

}  // namespace inference
}  // namespace piye

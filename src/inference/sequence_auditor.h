#ifndef PIYE_INFERENCE_SEQUENCE_AUDITOR_H_
#define PIYE_INFERENCE_SEQUENCE_AUDITOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "inference/constraint.h"

namespace piye {
namespace inference {

/// Answers the paper's hardest Section-4 question — "how do we ensure that a
/// set of query results ... cannot be combined together to violate data
/// privacy?" — by *simulating the adversary*: the auditor maintains the
/// constraint system an attacker could build from everything disclosed so
/// far, and refuses any new disclosure that would tighten some sensitive
/// value's interval beyond the loss threshold.
///
/// Unlike the Chin auditor (exact-compromise only) this is a quantitative
/// auditor: partial narrowing counts, matching the paper's probabilistic
/// notion of privacy loss.
class SequenceAuditor {
 public:
  /// `max_interval_loss` in [0,1]: the largest tolerated IntervalLoss for
  /// any sensitive value.
  explicit SequenceAuditor(double max_interval_loss)
      : max_loss_(max_interval_loss) {}

  /// Registers a sensitive value with its prior domain and (hidden) true
  /// value; returns its variable id.
  size_t AddSensitiveValue(const std::string& name, double lo, double hi,
                           double true_value);

  /// Proposes disclosing the mean of `vars` (± tol). If the resulting
  /// constraint system would push any value's interval loss above the
  /// threshold, returns kPrivacyViolation and discloses nothing; otherwise
  /// commits the constraint and returns the true mean.
  Result<double> DiscloseMean(const std::vector<size_t>& vars, double tol);

  /// Same for the population standard deviation about the (already public
  /// or simultaneously published) mean.
  Result<double> DiscloseStdDev(const std::vector<size_t>& vars, double tol);

  /// Proposes disclosing one value exactly (loss 1 for that item — only
  /// allowed when max_interval_loss >= 1).
  Result<double> DiscloseExact(size_t var);

  /// Current sound interval for each sensitive value given all committed
  /// disclosures.
  Result<std::vector<Interval>> CurrentBounds() const;

  /// Current per-value interval losses.
  Result<std::vector<double>> CurrentLosses() const;

  size_t disclosures_committed() const { return committed_; }
  size_t disclosures_refused() const { return refused_; }

 private:
  /// Checks a candidate system; commits it if safe.
  Result<double> TryCommit(ConstraintSystem candidate, double answer);

  double max_loss_;
  ConstraintSystem system_;
  std::vector<double> true_values_;
  std::vector<Interval> priors_;
  size_t committed_ = 0;
  size_t refused_ = 0;
};

}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_SEQUENCE_AUDITOR_H_

#include "inference/sequence_auditor.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "inference/interval_solver.h"
#include "inference/privacy_loss.h"

namespace piye {
namespace inference {

size_t SequenceAuditor::AddSensitiveValue(const std::string& name, double lo,
                                          double hi, double true_value) {
  const size_t var = system_.AddVariable(name, lo, hi);
  true_values_.push_back(true_value);
  priors_.push_back({lo, hi});
  return var;
}

Result<double> SequenceAuditor::TryCommit(ConstraintSystem candidate, double answer) {
  IntervalPropagator propagator(&candidate);
  PIYE_ASSIGN_OR_RETURN(std::vector<Interval> bounds, propagator.Propagate());
  for (size_t v = 0; v < bounds.size(); ++v) {
    const double l = loss::IntervalLoss(priors_[v], bounds[v]);
    if (l > max_loss_) {
      ++refused_;
      return Status::PrivacyViolation(strings::Format(
          "disclosure would raise interval loss of '%s' to %.3f (max %.3f)",
          system_.name(v).c_str(), l, max_loss_));
    }
  }
  system_ = std::move(candidate);
  ++committed_;
  return answer;
}

Result<double> SequenceAuditor::DiscloseMean(const std::vector<size_t>& vars,
                                             double tol) {
  if (vars.empty()) return Status::InvalidArgument("empty variable set");
  double mean = 0.0;
  for (size_t v : vars) {
    if (v >= true_values_.size()) return Status::OutOfRange("bad variable id");
    mean += true_values_[v];
  }
  mean /= static_cast<double>(vars.size());
  ConstraintSystem candidate = system_;
  candidate.AddMeanConstraint(vars, mean, tol);
  return TryCommit(std::move(candidate), mean);
}

Result<double> SequenceAuditor::DiscloseStdDev(const std::vector<size_t>& vars,
                                               double tol) {
  if (vars.empty()) return Status::InvalidArgument("empty variable set");
  double mean = 0.0;
  for (size_t v : vars) {
    if (v >= true_values_.size()) return Status::OutOfRange("bad variable id");
    mean += true_values_[v];
  }
  mean /= static_cast<double>(vars.size());
  double var_acc = 0.0;
  for (size_t v : vars) {
    const double d = true_values_[v] - mean;
    var_acc += d * d;
  }
  const double sigma = std::sqrt(var_acc / static_cast<double>(vars.size()));
  ConstraintSystem candidate = system_;
  candidate.AddStdDevConstraint(vars, mean, sigma, tol);
  return TryCommit(std::move(candidate), sigma);
}

Result<double> SequenceAuditor::DiscloseExact(size_t var) {
  if (var >= true_values_.size()) return Status::OutOfRange("bad variable id");
  ConstraintSystem candidate = system_;
  LinearConstraint c;
  c.terms.emplace_back(var, 1.0);
  c.lo = c.hi = true_values_[var];
  candidate.AddLinear(std::move(c));
  return TryCommit(std::move(candidate), true_values_[var]);
}

Result<std::vector<Interval>> SequenceAuditor::CurrentBounds() const {
  IntervalPropagator propagator(&system_);
  return propagator.Propagate();
}

Result<std::vector<double>> SequenceAuditor::CurrentLosses() const {
  PIYE_ASSIGN_OR_RETURN(std::vector<Interval> bounds, CurrentBounds());
  std::vector<double> out;
  out.reserve(bounds.size());
  for (size_t v = 0; v < bounds.size(); ++v) {
    out.push_back(loss::IntervalLoss(priors_[v], bounds[v]));
  }
  return out;
}

}  // namespace inference
}  // namespace piye

#ifndef PIYE_INFERENCE_SNOOPING_ATTACK_H_
#define PIYE_INFERENCE_SNOOPING_ATTACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "inference/constraint.h"
#include "inference/nlp_solver.h"

namespace piye {
namespace inference {

/// The published aggregates of Figure 1: for each measure (test), the mean
/// and standard deviation across parties (Fig. 1(a)); for each party (HMO),
/// its mean across measures (Fig. 1(b)). `tolerance` models the rounding of
/// the published numbers (a value published as 83.0 constrains the true mean
/// to 83.0 ± tolerance).
struct PublishedAggregates {
  std::vector<std::string> measures;  ///< e.g. {"HbA1c", "LipidProfile", "EyeExam"}
  std::vector<std::string> parties;   ///< e.g. {"HMO1", ..., "HMO4"}
  std::vector<double> measure_mean;   ///< per measure, across parties
  std::vector<double> measure_sigma;  ///< per measure, across parties
  std::vector<double> party_mean;     ///< per party, across measures
  double tolerance = 0.05;
  double value_lo = 0.0;   ///< prior domain of every cell
  double value_hi = 100.0;

  /// The exact aggregates of Figure 1 (PHC4 2001 diabetes data).
  static PublishedAggregates Figure1();
};

/// What the snooping party knows: which party it is and its own exact values
/// per measure.
struct AttackerKnowledge {
  size_t party_index = 0;
  std::vector<double> own_values;

  /// HMO1's knowledge in Figure 1(c): HbA1c 75.0, Lipid 56.0, Eye 43.0.
  static AttackerKnowledge Figure1();
};

/// The result: an inferred interval per (measure, party) cell, plus the
/// prior width for privacy-loss computation.
struct AttackResult {
  /// intervals[measure][party]; the attacker's own cells are width-0.
  std::vector<std::vector<Interval>> intervals;
  double prior_width = 100.0;

  /// Mean interval width over the *unknown* cells (lower = worse breach).
  double MeanUnknownWidth(size_t attacker_party) const;
};

/// Executes Figure 1's snooping attack: builds the constraint system from
/// the published aggregates plus the attacker's own values, then bounds each
/// unknown cell with the multistart NLP solver intersected with sound
/// interval propagation.
class SnoopingAttack {
 public:
  explicit SnoopingAttack(uint64_t seed, NlpBoundSolver::Options options = {})
      : seed_(seed), options_(options) {}

  /// Builds the adversary's constraint system (exposed for the defense,
  /// which audits with the same machinery).
  static Result<ConstraintSystem> BuildSystem(const PublishedAggregates& published,
                                              const AttackerKnowledge& attacker);

  Result<AttackResult> Run(const PublishedAggregates& published,
                           const AttackerKnowledge& attacker) const;

 private:
  uint64_t seed_;
  NlpBoundSolver::Options options_;
};

}  // namespace inference
}  // namespace piye

#endif  // PIYE_INFERENCE_SNOOPING_ATTACK_H_

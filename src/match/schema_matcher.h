#ifndef PIYE_MATCH_SCHEMA_MATCHER_H_
#define PIYE_MATCH_SCHEMA_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "linkage/bloom.h"
#include "relational/table.h"
#include "xml/loose_path.h"

namespace piye {
namespace match {

/// A fully qualified column of some source.
struct ColumnRef {
  std::string source;
  std::string table;
  std::string column;

  std::string ToString() const { return source + "." + table + "." + column; }
  bool operator<(const ColumnRef& o) const {
    return std::tie(source, table, column) < std::tie(o.source, o.table, o.column);
  }
  bool operator==(const ColumnRef& o) const {
    return source == o.source && table == o.table && column == o.column;
  }
};

/// One attribute correspondence produced by a matcher.
struct ColumnMatch {
  ColumnRef a;
  ColumnRef b;
  double score = 0.0;
};

/// Content statistics of a column that can be shared without revealing
/// values — plus a keyed Bloom filter of (a sample of) the hashed values.
/// This is the artifact exchanged by privacy-preserving schema matching: it
/// exposes neither the schema element's values nor (optionally) its name.
struct ColumnSketch {
  ColumnRef ref;
  bool name_public = true;  ///< false ⇒ `ref.column` is a salted hash tag
  relational::ColumnType type = relational::ColumnType::kString;

  // Instance features.
  double mean_length = 0.0;
  double digit_ratio = 0.0;
  double alpha_ratio = 0.0;
  double distinct_ratio = 0.0;
  double numeric_mean = 0.0;
  double numeric_stddev = 0.0;

  /// Keyed Bloom filter over (up to `max_sample`) distinct values.
  std::optional<linkage::BloomFilter> value_filter;

  /// Builds a sketch of `column` in `table`. `shared_key` keys the value
  /// filter; pass `name_public=false` to replace the column name with a
  /// salted hash (sources whose policy hides the schema).
  static Result<ColumnSketch> Build(const ColumnRef& ref,
                                    const relational::Table& table,
                                    const std::string& shared_key, bool name_public,
                                    size_t max_sample = 256);

  /// Similarity of instance features + value-filter overlap in [0,1].
  double InstanceSimilarity(const ColumnSketch& other) const;
};

/// Learning-based schema matcher in the spirit the paper cites from Clifton
/// et al. [14]: combines a name matcher (tokens/acronyms/synonyms — reusing
/// the loose-path name similarity) with an instance-feature matcher, under a
/// configurable weighting. Stable-marriage-style greedy one-to-one
/// assignment keeps the correspondences consistent.
class SchemaMatcher {
 public:
  struct Options {
    double name_weight = 0.5;
    double instance_weight = 0.5;
    double threshold = 0.6;  ///< minimum combined score to emit a match
  };

  SchemaMatcher(Options options, xml::LooseNameMatcher name_matcher)
      : options_(options), names_(std::move(name_matcher)) {}

  /// Plain matching with full access to both tables (the non-private
  /// baseline).
  Result<std::vector<ColumnMatch>> MatchTables(const std::string& source_a,
                                               const std::string& table_name_a,
                                               const relational::Table& a,
                                               const std::string& source_b,
                                               const std::string& table_name_b,
                                               const relational::Table& b) const;

  /// Privacy-preserving matching over sketches only. Hidden names
  /// contribute no name score (weight shifts to instance features).
  std::vector<ColumnMatch> MatchSketches(const std::vector<ColumnSketch>& a,
                                         const std::vector<ColumnSketch>& b) const;

  /// Pairwise combined score of two sketches.
  double Score(const ColumnSketch& a, const ColumnSketch& b) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  xml::LooseNameMatcher names_;
};

}  // namespace match
}  // namespace piye

#endif  // PIYE_MATCH_SCHEMA_MATCHER_H_

#ifndef PIYE_MATCH_MEDIATED_SCHEMA_H_
#define PIYE_MATCH_MEDIATED_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "match/schema_matcher.h"
#include "xml/node.h"

namespace piye {
namespace match {

/// One attribute of the mediated schema: a canonical name plus the source
/// columns it unifies. When every contributing source hides its column name,
/// the attribute gets a synthetic name and is flagged partial — the paper's
/// "partial structural summary".
struct MediatedAttribute {
  std::string name;
  bool partial = false;  ///< true when the canonical name is synthetic
  relational::ColumnType type = relational::ColumnType::kString;
  std::vector<ColumnRef> mappings;
};

/// The mediated schema: the requester's query-formulation guide.
class MediatedSchema {
 public:
  const std::vector<MediatedAttribute>& attributes() const { return attributes_; }
  void AddAttribute(MediatedAttribute attr) { attributes_.push_back(std::move(attr)); }

  /// The mediated attribute a fully qualified source column maps to, or
  /// nullptr.
  const MediatedAttribute* AttributeFor(const ColumnRef& ref) const;

  /// Finds an attribute by (approximate) name using the given matcher and
  /// threshold — the loose lookup behind privacy-conscious query
  /// translation.
  const MediatedAttribute* FindByName(const std::string& name,
                                      const xml::LooseNameMatcher& matcher,
                                      double threshold = 0.7) const;

  /// The source columns backing an attribute at a given source ("" = all).
  std::vector<ColumnRef> MappingsAt(const std::string& attribute,
                                    const std::string& source) const;

  /// Structural summary as XML (what the mediator shows requesters):
  ///   <mediatedSchema>
  ///     <attribute name="dob" type="STRING" partial="false">
  ///       <map source="hospitalA" table="patients" column="dob"/>
  ///     </attribute>
  ///   </mediatedSchema>
  std::unique_ptr<xml::XmlNode> ToXml() const;

 private:
  std::vector<MediatedAttribute> attributes_;
};

/// Builds a mediated schema from per-source column sketches by clustering
/// pairwise matches (union-find over SchemaMatcher correspondences). The
/// generator never touches raw source data — only sketches — which is what
/// makes the mediated-schema generation privacy-preserving (Section 5).
class MediatedSchemaGenerator {
 public:
  explicit MediatedSchemaGenerator(SchemaMatcher matcher)
      : matcher_(std::move(matcher)) {}

  /// `sketches` holds every exported column of every source.
  Result<MediatedSchema> Generate(const std::vector<ColumnSketch>& sketches) const;

 private:
  SchemaMatcher matcher_;
};

}  // namespace match
}  // namespace piye

#endif  // PIYE_MATCH_MEDIATED_SCHEMA_H_

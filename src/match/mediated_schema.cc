#include "match/mediated_schema.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/strings.h"

namespace piye {
namespace match {

const MediatedAttribute* MediatedSchema::AttributeFor(const ColumnRef& ref) const {
  for (const auto& attr : attributes_) {
    for (const auto& m : attr.mappings) {
      if (m == ref) return &attr;
    }
  }
  return nullptr;
}

const MediatedAttribute* MediatedSchema::FindByName(
    const std::string& name, const xml::LooseNameMatcher& matcher,
    double threshold) const {
  const MediatedAttribute* best = nullptr;
  double best_score = threshold;
  for (const auto& attr : attributes_) {
    const double s = matcher.NameSimilarity(name, attr.name);
    if (s >= best_score) {
      best_score = s;
      best = &attr;
    }
  }
  return best;
}

std::vector<ColumnRef> MediatedSchema::MappingsAt(const std::string& attribute,
                                                  const std::string& source) const {
  std::vector<ColumnRef> out;
  for (const auto& attr : attributes_) {
    if (attr.name != attribute) continue;
    for (const auto& m : attr.mappings) {
      if (source.empty() || m.source == source) out.push_back(m);
    }
  }
  return out;
}

std::unique_ptr<xml::XmlNode> MediatedSchema::ToXml() const {
  auto node = xml::XmlNode::Element("mediatedSchema");
  for (const auto& attr : attributes_) {
    xml::XmlNode* a = node->AddElement("attribute");
    a->SetAttr("name", attr.name);
    a->SetAttr("type", relational::ColumnTypeToString(attr.type));
    a->SetAttr("partial", attr.partial ? "true" : "false");
    for (const auto& m : attr.mappings) {
      xml::XmlNode* map = a->AddElement("map");
      map->SetAttr("source", m.source);
      map->SetAttr("table", m.table);
      map->SetAttr("column", m.column);
    }
  }
  return node;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<MediatedSchema> MediatedSchemaGenerator::Generate(
    const std::vector<ColumnSketch>& sketches) const {
  UnionFind uf(sketches.size());
  // Match sketches across different sources pairwise; same-source columns
  // are never merged (a source's own columns are distinct attributes).
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (size_t j = i + 1; j < sketches.size(); ++j) {
      if (sketches[i].ref.source == sketches[j].ref.source) continue;
      const double s = matcher_.Score(sketches[i], sketches[j]);
      if (s >= matcher_.options().threshold) uf.Merge(i, j);
    }
  }
  std::map<size_t, std::vector<size_t>> clusters;
  for (size_t i = 0; i < sketches.size(); ++i) clusters[uf.Find(i)].push_back(i);

  MediatedSchema schema;
  size_t synthetic = 0;
  for (const auto& [root, members] : clusters) {
    (void)root;
    MediatedAttribute attr;
    // Canonical name: the most common *public* column name in the cluster.
    std::map<std::string, size_t> votes;
    for (size_t m : members) {
      if (sketches[m].name_public) ++votes[sketches[m].ref.column];
    }
    if (votes.empty()) {
      attr.name = strings::Format("attr_%zu", synthetic++);
      attr.partial = true;
    } else {
      attr.name = std::max_element(votes.begin(), votes.end(),
                                   [](const auto& a, const auto& b) {
                                     if (a.second != b.second) return a.second < b.second;
                                     return a.first > b.first;
                                   })
                      ->first;
      // The summary is partial if any member hides its name (the requester
      // cannot see the full lineage).
      for (size_t m : members) {
        if (!sketches[m].name_public) attr.partial = true;
      }
    }
    attr.type = sketches[members[0]].type;
    for (size_t m : members) attr.mappings.push_back(sketches[m].ref);
    std::sort(attr.mappings.begin(), attr.mappings.end());
    schema.AddAttribute(std::move(attr));
  }
  return schema;
}

}  // namespace match
}  // namespace piye

#include "match/schema_matcher.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/macros.h"
#include "common/sha256.h"
#include "common/strings.h"

namespace piye {
namespace match {

Result<ColumnSketch> ColumnSketch::Build(const ColumnRef& ref,
                                         const relational::Table& table,
                                         const std::string& shared_key,
                                         bool name_public, size_t max_sample) {
  PIYE_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(ref.column));
  ColumnSketch sketch;
  sketch.ref = ref;
  sketch.name_public = name_public;
  if (!name_public) {
    sketch.ref.column =
        "h_" + Sha256::ToHex(Sha256::Hash(shared_key + "|" + ref.column)).substr(0, 12);
  }
  sketch.type = table.schema().column(col).type;

  std::set<std::string> distinct;
  double total_len = 0.0, digits = 0.0, alphas = 0.0, chars = 0.0;
  double num_sum = 0.0, num_sum_sq = 0.0;
  size_t num_count = 0, non_null = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const relational::Value v = table.Cell(r, col);
    if (v.is_null()) continue;
    ++non_null;
    const std::string s = v.ToDisplayString();
    distinct.insert(s);
    total_len += static_cast<double>(s.size());
    for (char c : s) {
      chars += 1.0;
      if (std::isdigit(static_cast<unsigned char>(c))) digits += 1.0;
      if (std::isalpha(static_cast<unsigned char>(c))) alphas += 1.0;
    }
    if (v.is_numeric()) {
      const double x = v.AsDouble();
      num_sum += x;
      num_sum_sq += x * x;
      ++num_count;
    }
  }
  if (non_null > 0) {
    sketch.mean_length = total_len / static_cast<double>(non_null);
    sketch.distinct_ratio =
        static_cast<double>(distinct.size()) / static_cast<double>(non_null);
  }
  if (chars > 0) {
    sketch.digit_ratio = digits / chars;
    sketch.alpha_ratio = alphas / chars;
  }
  if (num_count > 0) {
    const double n = static_cast<double>(num_count);
    sketch.numeric_mean = num_sum / n;
    sketch.numeric_stddev =
        std::sqrt(std::max(0.0, num_sum_sq / n - sketch.numeric_mean * sketch.numeric_mean));
  }
  linkage::BloomFilter filter(512, 4);
  size_t taken = 0;
  for (const auto& s : distinct) {
    if (taken >= max_sample) break;
    filter.Insert(shared_key + "|" + s);
    ++taken;
  }
  sketch.value_filter = std::move(filter);
  return sketch;
}

double ColumnSketch::InstanceSimilarity(const ColumnSketch& other) const {
  // Feature closeness: 1 - normalized absolute difference, averaged.
  auto closeness = [](double a, double b, double scale) {
    if (scale <= 0.0) return a == b ? 1.0 : 0.0;
    return std::max(0.0, 1.0 - std::fabs(a - b) / scale);
  };
  double score = 0.0;
  double weight = 0.0;
  score += closeness(mean_length, other.mean_length, 10.0);
  weight += 1.0;
  score += closeness(digit_ratio, other.digit_ratio, 1.0);
  weight += 1.0;
  score += closeness(alpha_ratio, other.alpha_ratio, 1.0);
  weight += 1.0;
  score += closeness(distinct_ratio, other.distinct_ratio, 1.0);
  weight += 1.0;
  score += type == other.type ? 1.0 : 0.0;
  weight += 1.0;
  const bool numeric = type == relational::ColumnType::kInt64 ||
                       type == relational::ColumnType::kDouble;
  if (numeric && type == other.type) {
    const double scale =
        std::max({std::fabs(numeric_mean), std::fabs(other.numeric_mean), 1.0});
    score += closeness(numeric_mean, other.numeric_mean, scale);
    weight += 1.0;
  }
  if (value_filter.has_value() && other.value_filter.has_value()) {
    // Value overlap is the strongest instance signal — double weight.
    score += 2.0 * linkage::BloomFilter::DiceSimilarity(*value_filter,
                                                        *other.value_filter);
    weight += 2.0;
  }
  return weight == 0.0 ? 0.0 : score / weight;
}

double SchemaMatcher::Score(const ColumnSketch& a, const ColumnSketch& b) const {
  const double instance = a.InstanceSimilarity(b);
  if (!a.name_public || !b.name_public) {
    return instance;  // name signal unavailable; all weight on instances
  }
  const double name = names_.NameSimilarity(a.ref.column, b.ref.column);
  const double total_w = options_.name_weight + options_.instance_weight;
  if (total_w <= 0.0) return 0.0;
  return (options_.name_weight * name + options_.instance_weight * instance) / total_w;
}

std::vector<ColumnMatch> SchemaMatcher::MatchSketches(
    const std::vector<ColumnSketch>& a, const std::vector<ColumnSketch>& b) const {
  struct Candidate {
    double score;
    size_t i, j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      const double s = Score(a[i], b[j]);
      if (s >= options_.threshold) candidates.push_back({s, i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& x, const Candidate& y) {
    if (x.score != y.score) return x.score > y.score;
    return std::tie(x.i, x.j) < std::tie(y.i, y.j);
  });
  // Greedy one-to-one assignment by descending score.
  std::vector<bool> used_a(a.size(), false), used_b(b.size(), false);
  std::vector<ColumnMatch> out;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    out.push_back({a[c.i].ref, b[c.j].ref, c.score});
  }
  return out;
}

Result<std::vector<ColumnMatch>> SchemaMatcher::MatchTables(
    const std::string& source_a, const std::string& table_name_a,
    const relational::Table& a, const std::string& source_b,
    const std::string& table_name_b, const relational::Table& b) const {
  std::vector<ColumnSketch> sa, sb;
  for (const auto& col : a.schema().columns()) {
    PIYE_ASSIGN_OR_RETURN(
        ColumnSketch s,
        ColumnSketch::Build({source_a, table_name_a, col.name}, a, "", true));
    sa.push_back(std::move(s));
  }
  for (const auto& col : b.schema().columns()) {
    PIYE_ASSIGN_OR_RETURN(
        ColumnSketch s,
        ColumnSketch::Build({source_b, table_name_b, col.name}, b, "", true));
    sb.push_back(std::move(s));
  }
  return MatchSketches(sa, sb);
}

}  // namespace match
}  // namespace piye

#include "common/executor.h"

#include <algorithm>

namespace piye {

Executor::Executor(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

size_t Executor::tasks_submitted() const {
  MutexLock lock(mu_);
  return tasks_submitted_;
}

void Executor::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  cv_.NotifyOne();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      // Drain the queue even when stopping: destructor-submitted joins rely
      // on every accepted task eventually running.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(n, num_threads() + 1);
  const size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> pending;
  pending.reserve(workers);
  // Chunks [1, workers) go to the pool; chunk 0 runs on the caller so a
  // single-item loop never pays a queue round-trip.
  for (size_t w = 1; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pending.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  const size_t first_end = std::min(n, chunk);
  for (size_t i = 0; i < first_end; ++i) fn(i);
  for (auto& f : pending) f.get();
}

Executor& Executor::Shared() {
  static Executor shared(DefaultThreadCount());
  return shared;
}

size_t Executor::DefaultThreadCount() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw == 0 ? 4 : hw, 1, 16);
}

}  // namespace piye

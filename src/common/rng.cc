#include "common/rng.h"

#include <cmath>

namespace piye {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLaplace(double scale) {
  const double u = NextDouble() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

int Rng::NextPoisson(double rate) {
  const double limit = std::exp(-rate);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

}  // namespace piye

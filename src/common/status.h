#ifndef PIYE_COMMON_STATUS_H_
#define PIYE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace piye {

/// Error categories used across the PRIVATE-IYE libraries.
///
/// `kPrivacyViolation` is the distinguished code produced when a policy,
/// auditor, or the mediator's privacy control refuses to release data; callers
/// are expected to branch on it (a refused result is a *normal* outcome of a
/// privacy-preserving integration system, not an internal failure).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kPrivacyViolation,
  kParseError,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kUnavailable,        ///< transient failure of an autonomous remote source
  kDeadlineExceeded,   ///< a per-source or per-query deadline expired
  kResourceExhausted,  ///< load shed: admission refused the query; retry later
  kCancelled,          ///< the caller cooperatively cancelled the operation
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. The library does not throw exceptions
/// across API boundaries; every fallible operation returns a `Status` or a
/// `Result<T>` (see result.h).
/// [[nodiscard]]: a dropped Status is a swallowed failure — the compiler
/// rejects ignoring one unless the call site explicitly `(void)`s it with a
/// justification comment (enforced by piye_lint's status-discard rule).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status PrivacyViolation(std::string msg) {
    return Status(StatusCode::kPrivacyViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsPrivacyViolation() const { return code_ == StatusCode::kPrivacyViolation; }
  bool IsPermissionDenied() const { return code_ == StatusCode::kPermissionDenied; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace piye

#endif  // PIYE_COMMON_STATUS_H_

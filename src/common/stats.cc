#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace piye {
namespace stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 1) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double EntropyBits(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<size_t> Histogram(const std::vector<double>& xs, double lo, double hi,
                              size_t bins) {
  std::vector<size_t> out(bins, 0);
  if (bins == 0 || hi <= lo) return out;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    long b = static_cast<long>((x - lo) / width);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    ++out[static_cast<size_t>(b)];
  }
  return out;
}

double Correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double KlDivergenceBits(const std::vector<size_t>& p, const std::vector<size_t>& q) {
  if (p.size() != q.size() || p.empty()) return 0.0;
  const size_t n = p.size();
  double tp = 0.0, tq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    tp += static_cast<double>(p[i]) + 1.0;
    tq += static_cast<double>(q[i]) + 1.0;
  }
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pi = (static_cast<double>(p[i]) + 1.0) / tp;
    const double qi = (static_cast<double>(q[i]) + 1.0) / tq;
    d += pi * std::log2(pi / qi);
  }
  return d;
}

}  // namespace stats
}  // namespace piye

#include "common/cancel.h"

#include <algorithm>
#include <thread>  // std::this_thread::sleep_until

#include "common/sync.h"

namespace piye {

namespace internal {

struct CancelState {
  Mutex mu;
  CondVar cv;
  bool cancelled GUARDED_BY(mu) = false;
  Status reason GUARDED_BY(mu);
};

}  // namespace internal

bool CancelToken::cancelled() const {
  if (state_ != nullptr) {
    MutexLock lock(state_->mu);
    if (state_->cancelled) return true;
  }
  return has_deadline() && std::chrono::steady_clock::now() >= deadline_;
}

Status CancelToken::status() const {
  if (state_ != nullptr) {
    MutexLock lock(state_->mu);
    if (state_->cancelled) return state_->reason;
  }
  if (has_deadline() && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded("the query's deadline has passed");
  }
  return Status::OK();
}

CancelToken CancelToken::WithDeadline(TimePoint deadline) const {
  CancelToken out = *this;
  out.deadline_ = std::min(deadline_, deadline);
  return out;
}

bool CancelToken::SleepFor(std::chrono::microseconds duration) const {
  const auto now = std::chrono::steady_clock::now();
  // Wake at the deadline even mid-sleep: a hung-source simulation or a retry
  // backoff must not outlive the query that asked for it.
  const TimePoint wake = std::min(now + duration, deadline_);
  if (state_ == nullptr) {
    if (wake > now) std::this_thread::sleep_until(wake);
    return !has_deadline() || std::chrono::steady_clock::now() < deadline_;
  }
  MutexLock lock(state_->mu);
  while (!state_->cancelled) {
    if (state_->cv.WaitUntil(lock, wake) == std::cv_status::timeout) break;
  }
  if (state_->cancelled) return false;
  return !has_deadline() || std::chrono::steady_clock::now() < deadline_;
}

CancelSource::CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

CancelToken CancelSource::token() const {
  CancelToken t;
  t.state_ = state_;
  return t;
}

void CancelSource::RequestCancel(Status reason) {
  {
    MutexLock lock(state_->mu);
    if (state_->cancelled) return;
    state_->cancelled = true;
    state_->reason = std::move(reason);
  }
  state_->cv.NotifyAll();
}

bool CancelSource::cancel_requested() const {
  MutexLock lock(state_->mu);
  return state_->cancelled;
}

}  // namespace piye

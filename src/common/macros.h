#ifndef PIYE_COMMON_MACROS_H_
#define PIYE_COMMON_MACROS_H_

/// Propagates a non-OK Status to the caller.
#define PIYE_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::piye::Status _piye_status = (expr);        \
    if (!_piye_status.ok()) return _piye_status; \
  } while (false)

#define PIYE_CONCAT_IMPL(x, y) x##y
#define PIYE_CONCAT(x, y) PIYE_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on failure propagates the Status.
#define PIYE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  PIYE_ASSIGN_OR_RETURN_IMPL(PIYE_CONCAT(_piye_result, __LINE__), lhs, rexpr)

#define PIYE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).value()

#endif  // PIYE_COMMON_MACROS_H_

#ifndef PIYE_COMMON_RESULT_H_
#define PIYE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace piye {

/// Value-or-error carrier, in the style of arrow::Result.
///
/// A `Result<T>` holds either a value of type `T` or a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds and is
/// undefined otherwise, so callers must check `ok()` first (or use the
/// PIYE_ASSIGN_OR_RETURN macro from macros.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value if present, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace piye

#endif  // PIYE_COMMON_RESULT_H_

#ifndef PIYE_COMMON_SHA256_H_
#define PIYE_COMMON_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace piye {

/// Self-contained SHA-256 (FIPS 180-4). Used as the hash primitive for the
/// PSI protocols, Bloom filters, and policy fingerprints so the library has
/// no external crypto dependency.
class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256();

  /// Absorbs more input.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must not be reused after.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view s);

  /// One-shot digest truncated to 64 bits (big-endian first 8 bytes) — handy
  /// as a keyed bucket/sketch value.
  static uint64_t Hash64(std::string_view s);

  /// Hex encoding of a digest.
  static std::string ToHex(const Digest& d);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace piye

#endif  // PIYE_COMMON_SHA256_H_

#ifndef PIYE_COMMON_STATS_H_
#define PIYE_COMMON_STATS_H_

#include <cstddef>
#include <map>
#include <vector>

namespace piye {

/// Small numeric/statistics helpers shared by the perturbation, anonymity,
/// and inference modules.
namespace stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by N); 0 for inputs with < 1 element.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Sample (Bessel-corrected) variance; 0 for inputs with < 2 elements.
double SampleVariance(const std::vector<double>& xs);

/// p-th percentile (p in [0,1]) using linear interpolation; input need not be
/// sorted. Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// Shannon entropy (bits) of a discrete distribution given by counts.
double EntropyBits(const std::vector<size_t>& counts);

/// Builds an equi-width histogram of `xs` over [lo, hi] with `bins` buckets.
/// Values outside the range are clamped into the first/last bucket.
std::vector<size_t> Histogram(const std::vector<double>& xs, double lo, double hi,
                              size_t bins);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double Correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Root-mean-square error between equal-length series.
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/// Kullback–Leibler divergence D(p||q) in bits over histogram counts, with
/// add-one smoothing so it is always finite.
double KlDivergenceBits(const std::vector<size_t>& p, const std::vector<size_t>& q);

}  // namespace stats
}  // namespace piye

#endif  // PIYE_COMMON_STATS_H_

#ifndef PIYE_COMMON_EXECUTOR_H_
#define PIYE_COMMON_EXECUTOR_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>  // piye-lint: allow(header-hygiene) the pool owns its worker threads
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/sync.h"

namespace piye {

/// Fixed-size thread pool used by the mediation engine to fan query
/// fragments out across autonomous remote sources, and by benchmarks for
/// data-parallel loops.
///
/// Semantics:
///  - `Submit` enqueues a task and returns a `std::future` for its result.
///    Tasks own their captured state; a caller that stops waiting on the
///    future (e.g. a per-source deadline expired) simply abandons it — the
///    task still runs to completion on a pool thread and its state is
///    released afterwards, so nothing dangles.
///  - The destructor drains the queue and joins every worker, which is what
///    lets owners (e.g. `MediationEngine`) guarantee that no task outlives
///    the resources it references: declare the executor *after* those
///    resources so it is destroyed (joined) first.
///  - `ParallelFor` is a convenience barrier for index-space loops. It is
///    not reentrant: calling it from inside a pool task can deadlock.
class Executor {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit Executor(size_t num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Number of tasks submitted over the executor's lifetime.
  size_t tasks_submitted() const;

  /// Enqueues `fn` and returns a future for its result. `fn` must be
  /// invocable with no arguments.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Cancellation-aware variant for fire-and-observe tasks: if `token` has
  /// fired by the time a worker dequeues the task, the body is skipped
  /// entirely (the future still becomes ready) — a cancelled query's
  /// queued-but-unstarted fragments never dial their source. A task already
  /// running is not preempted; it is expected to poll the same token.
  template <typename F>
  std::future<void> Submit(const CancelToken& token, F&& fn) {
    static_assert(std::is_void_v<std::invoke_result_t<std::decay_t<F>>>,
                  "cancellable Submit requires a void() task");
    return Submit([token, fn = std::forward<F>(fn)]() mutable {
      if (token.cancelled()) return;
      fn();
    });
  }

  /// Runs fn(0) .. fn(n-1) across the pool and the calling thread, returning
  /// only when every index has completed. Work is split into contiguous
  /// chunks (one per worker plus one for the caller).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// A process-wide pool sized to the hardware, for callers without a
  /// natural owner for one (benchmarks, ad-hoc tools). Library classes own
  /// their executors instead so shutdown order stays explicit.
  static Executor& Shared();

  /// The default worker count: hardware concurrency clamped to [1, 16].
  static size_t DefaultThreadCount();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  size_t tasks_submitted_ GUARDED_BY(mu_) = 0;
  /// Written in the constructor, joined in the destructor; never touched by
  /// worker threads, so it needs no capability.
  std::vector<std::thread> threads_;
};

}  // namespace piye

#endif  // PIYE_COMMON_EXECUTOR_H_

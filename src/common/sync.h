#ifndef PIYE_COMMON_SYNC_H_
#define PIYE_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronization primitives for the whole codebase.
///
/// Every lock in PRIVATE-IYE guards part of the privacy trust anchor —
/// budget state, auditor verdicts, warehouse epochs, WAL ordering — so lock
/// discipline here is a *privacy* invariant, not just a liveness one. This
/// header promotes that discipline from convention to compile-time proof:
/// the `Mutex` / `SharedMutex` / lock-guard wrappers carry Clang
/// thread-safety capability attributes, and the `GUARDED_BY` / `REQUIRES` /
/// `EXCLUDES` macro family lets every subsystem declare which fields a lock
/// protects and which functions demand it held. Building with
///
///   clang++ -Wthread-safety -Werror=thread-safety
///
/// (the CI "analysis" leg, see scripts/ci.sh) then rejects any unguarded
/// access to a guarded field, any missing-lock call to a `REQUIRES`
/// function, and any double-acquire of a capability. On compilers without
/// the analysis (GCC) the attributes expand to nothing and the wrappers are
/// zero-cost shims over the std primitives, so the annotated tree builds
/// everywhere.
///
/// Rules of the road (enforced by tools/piye_lint):
///  - raw `std::mutex` / `std::condition_variable` / lock guards are banned
///    outside this header — use `piye::Mutex`, `piye::CondVar`,
///    `piye::MutexLock`;
///  - `NO_THREAD_SAFETY_ANALYSIS` is banned outside this header: there is no
///    escape hatch in application code, an analysis failure is a real bug or
///    a missing annotation;
///  - condition-variable predicates are written as explicit `while` loops in
///    the waiting function (not lambdas), so the analysis sees the guarded
///    reads under the scoped capability.

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops on other compilers). The
// names follow the canonical set from the Clang Thread Safety Analysis
// documentation, so the annotations read like the upstream literature.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define PIYE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PIYE_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) PIYE_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY PIYE_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) PIYE_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) PIYE_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PIYE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PIYE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PIYE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PIYE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PIYE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PIYE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PIYE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PIYE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PIYE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PIYE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PIYE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) PIYE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PIYE_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  PIYE_THREAD_ANNOTATION_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) PIYE_THREAD_ANNOTATION_(lock_returned(x))
// The one escape hatch. Used only inside this header (enforced by
// piye_lint's analysis-escape rule): application code has no business
// opting out of the proof.
#define NO_THREAD_SAFETY_ANALYSIS \
  PIYE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace piye {

/// Exclusive mutex carrying the "mutex" capability. A thin shim over
/// std::mutex; prefer the RAII `MutexLock` over manual Lock/Unlock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The underlying std::mutex, for CondVar's wait plumbing only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex carrying the "shared_mutex" capability (the metrics
/// registry's counter stripes are the canonical user: shared for the
/// steady-state name lookup, exclusive to insert a new counter cell).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a `Mutex` (scoped capability). Holds a
/// std::unique_lock underneath so `CondVar` can wait on it; the analysis
/// treats the capability as held for the guard's whole scope (CondVar::Wait
/// releases and reacquires atomically, which preserves that contract at
/// every point the guarded code actually runs).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for CondVar's wait plumbing only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock over a `SharedMutex`.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a `SharedMutex`.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `Mutex`/`MutexLock`. Waits take the RAII
/// guard (proof the capability is held); predicates are expressed as
/// explicit while-loops at the call site so guarded reads stay visible to
/// the analysis:
///
///   MutexLock lock(mu_);
///   while (!done_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }

  std::cv_status WaitUntil(MutexLock& lock,
                           std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.native(), timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace piye

#endif  // PIYE_COMMON_SYNC_H_

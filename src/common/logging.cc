#include "common/logging.h"

#include <cstdio>

namespace piye {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace piye

#include "common/modmath.h"

#include <initializer_list>

#include "common/sha256.h"

namespace piye {
namespace modmath {

// Largest safe prime below 2^61: p = 2q + 1 with q prime. Verified by the
// Miller–Rabin certificate test in tests/common_test.cc.
const uint64_t kSafePrime = 2305843009213691579ULL;
const uint64_t kSubgroupOrder = 1152921504606845789ULL;  // (p - 1) / 2
const uint64_t kSubgroupGenerator = 4ULL;                // 2^2, a quadratic residue

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t InvMod(uint64_t a, uint64_t m) { return PowMod(a % m, m - 2, m); }

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is deterministic for all 64-bit integers.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    uint64_t x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

uint64_t HashToGroup(const char* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  const Sha256::Digest d = h.Finish();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<size_t>(i)];
  v %= kSafePrime;
  if (v == 0) v = 2;
  // Squaring maps into the order-q subgroup of quadratic residues.
  return MulMod(v, v, kSafePrime);
}

}  // namespace modmath
}  // namespace piye

#ifndef PIYE_COMMON_LOGGING_H_
#define PIYE_COMMON_LOGGING_H_

#include <string>

namespace piye {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/// Minimal leveled logger writing to stderr. Benchmarks raise the threshold
/// to kError so timing loops are not polluted by audit-trail chatter.
class Logger {
 public:
  /// Global severity threshold; messages below it are dropped.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  static void Log(LogLevel level, const std::string& component,
                  const std::string& message);

  static void Debug(const std::string& component, const std::string& message) {
    Log(LogLevel::kDebug, component, message);
  }
  static void Info(const std::string& component, const std::string& message) {
    Log(LogLevel::kInfo, component, message);
  }
  static void Warn(const std::string& component, const std::string& message) {
    Log(LogLevel::kWarn, component, message);
  }
  static void Error(const std::string& component, const std::string& message) {
    Log(LogLevel::kError, component, message);
  }
};

}  // namespace piye

#endif  // PIYE_COMMON_LOGGING_H_

#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace piye {
namespace strings {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  return ToLower(haystack).find(ToLower(needle)) != std::string::npos;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) / static_cast<double>(longest);
}

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> out;
  if (q == 0) return out;
  std::string padded(q - 1, '#');
  padded += ToLower(s);
  padded += std::string(q - 1, '#');
  if (padded.size() < q) return out;
  for (size_t i = 0; i + q <= padded.size(); ++i) out.push_back(padded.substr(i, q));
  return out;
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  const auto ga = QGrams(a, q);
  const auto gb = QGrams(b, q);
  const std::set<std::string> sa(ga.begin(), ga.end());
  const std::set<std::string> sb(gb.begin(), gb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<std::string> TokenizeIdentifier(std::string_view ident) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(ToLower(cur));
      cur.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    const char c = ident[i];
    if (c == '_' || c == '-' || c == ' ' || c == '.' || c == '/') {
      flush();
    } else if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
               std::islower(static_cast<unsigned char>(cur.back()))) {
      flush();
      cur += c;
    } else {
      cur += c;
    }
  }
  flush();
  return tokens;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace strings
}  // namespace piye

#ifndef PIYE_COMMON_TRACE_H_
#define PIYE_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace piye {
namespace trace {

/// One named stage duration of a query, in microseconds. This is the record
/// the engine reports back per query (previously the ad-hoc
/// `MediationEngine::StageTiming`); the aggregate view lives in the
/// `MetricsRegistry` histograms.
struct StageTiming {
  std::string stage;
  double micros = 0.0;
};

/// Thread-safe per-query span collector. Spans from concurrently executing
/// per-source tasks land in the same trace; ordering within the trace is
/// completion order, which is why callers that need a deterministic report
/// (the engine) record their top-level stages from a single thread.
class Trace {
 public:
  void Record(const std::string& stage, double micros);
  std::vector<StageTiming> timings() const;

 private:
  mutable Mutex mu_;
  std::vector<StageTiming> timings_ GUARDED_BY(mu_);
};

/// Fixed-bucket latency histogram (power-of-two microsecond buckets). Small
/// enough to copy out as a snapshot under a registry lock.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(double micros);

  uint64_t count() const { return count_; }
  double sum_micros() const { return sum_; }
  double min_micros() const { return count_ == 0 ? 0.0 : min_; }
  double max_micros() const { return count_ == 0 ? 0.0 : max_; }
  double mean_micros() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Approximate percentile (p in [0,1]) from the bucket boundaries.
  double PercentileMicros(double p) const;

  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of named counters and latency histograms. All operations are
/// thread-safe; the engine owns one and its concurrent per-source tasks
/// record into it directly.
///
/// Counters are striped by name hash and stored as atomics behind a
/// shared_mutex per stripe, so the steady-state AddCounter path is a shared
/// (read) lock plus one relaxed fetch_add — concurrent writers to different
/// names (or even the same name) never serialize behind a global map lock.
/// For the hottest paths, `RegisterCounter` hands back a stable atomic cell
/// that callers cache and increment directly, skipping even the name lookup
/// (the warehouse shards do this). Histograms keep a per-stripe mutex:
/// Histogram::Record mutates several fields and is not atomic-friendly.
class MetricsRegistry {
 public:
  /// A registered counter cell. Stable for the registry's lifetime — Reset
  /// zeroes registered cells instead of destroying them, precisely so cached
  /// pointers never dangle.
  using Counter = std::atomic<uint64_t>;

  /// Returns the (created-on-first-use) counter cell for `name`. Increment
  /// with `fetch_add(n, std::memory_order_relaxed)`.
  Counter* RegisterCounter(const std::string& name);

  void AddCounter(const std::string& name, uint64_t delta = 1);
  void RecordLatency(const std::string& name, double micros);

  /// Pre-registers a latency histogram with no samples, so scrapers see the
  /// metric (at explicit zeros) before the first recording. No-op if the
  /// name already exists.
  void DeclareLatency(const std::string& name);

  uint64_t counter(const std::string& name) const;
  /// Snapshot copy; a never-recorded name yields an empty histogram.
  Histogram latency(const std::string& name) const;

  /// Dumps every counter and histogram as a JSON object:
  /// {"counters": {...}, "latencies": {name: {count, sum_micros, min_micros,
  /// max_micros, mean_micros, p50_micros, p95_micros, p99_micros}}}.
  /// Names are JSON-escaped; an empty histogram reports explicit zeros.
  std::string ToJson() const;

  /// Zeroes every counter (registered cells stay valid) and drops all
  /// histograms.
  void Reset();

 private:
  static constexpr size_t kStripes = 16;

  struct CounterStripe {
    mutable SharedMutex mu;
    /// The *map* is guarded; the atomic cells it owns are deliberately
    /// accessed lock-free through cached `Counter*` handles.
    std::map<std::string, std::unique_ptr<Counter>> counters GUARDED_BY(mu);
  };
  struct LatencyStripe {
    mutable Mutex mu;
    std::map<std::string, Histogram> latencies GUARDED_BY(mu);
  };

  static size_t StripeOf(const std::string& name) {
    return std::hash<std::string>{}(name) % kStripes;
  }

  std::array<CounterStripe, kStripes> counter_stripes_;
  std::array<LatencyStripe, kStripes> latency_stripes_;
};

/// RAII span over a monotonic (steady) clock — wall-clock timestamps are
/// never used for durations, so NTP adjustments cannot produce negative
/// stage timings. On destruction (or explicit `Stop`) the elapsed time is
/// recorded into the optional per-query `Trace` and the optional
/// `MetricsRegistry` latency histogram of the same name.
class ScopedSpan {
 public:
  ScopedSpan(std::string stage, Trace* trace, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early and returns the elapsed microseconds; the
  /// destructor then does nothing.
  double Stop();

 private:
  std::string stage_;
  Trace* trace_;
  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace trace
}  // namespace piye

#endif  // PIYE_COMMON_TRACE_H_

#ifndef PIYE_COMMON_CANCEL_H_
#define PIYE_COMMON_CANCEL_H_

#include <chrono>
#include <memory>

#include "common/status.h"

namespace piye {

namespace internal {
struct CancelState;
}  // namespace internal

/// A cheap, copyable handle for cooperative cancellation, threaded from a
/// caller through `MediationEngine::Execute`, the executor's fragment tasks,
/// and `RemoteSource::ExecuteFragment`. A token carries two independent stop
/// signals:
///
///  - an explicit cancel requested through the owning `CancelSource`
///    (reported as `kCancelled`), and
///  - an absolute steady-clock deadline (reported as `kDeadlineExceeded`).
///
/// A default-constructed token never fires — APIs that take a token
/// defaulted to `CancelToken()` behave exactly as before cancellation
/// existed. Checking is polling-based (`cancelled()` / `Check()` at natural
/// pipeline boundaries) plus `SleepFor`, an interruptible sleep that a
/// `CancelSource::RequestCancel` wakes immediately — which is what lets a
/// retry backoff or an injected-fault hang stop mid-sleep instead of running
/// to completion.
class CancelToken {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Never cancelled, no deadline.
  CancelToken() = default;

  /// True once the source cancelled or the deadline passed.
  bool cancelled() const;

  /// OK while live; the cancellation reason (`kCancelled`) or
  /// `kDeadlineExceeded` once fired. `Check()` is the same thing phrased for
  /// PIYE_RETURN_NOT_OK at pipeline stage boundaries.
  Status status() const;
  Status Check() const { return status(); }

  bool has_deadline() const { return deadline_ != TimePoint::max(); }
  TimePoint deadline() const { return deadline_; }

  /// False only for a token that can never fire (default-constructed, no
  /// deadline) — waiters use this to skip cancellation polling entirely.
  bool can_fire() const { return state_ != nullptr || has_deadline(); }

  /// A token that additionally expires at `deadline` (the earlier of the two
  /// wins). Used by the engine to tighten a caller token with the per-query
  /// fan-out deadline before handing it to fragment tasks.
  CancelToken WithDeadline(TimePoint deadline) const;
  CancelToken WithTimeout(std::chrono::milliseconds timeout) const {
    return WithDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Sleeps up to `duration`, waking early on cancellation or deadline.
  /// Returns true after an undisturbed full sleep; false when the token
  /// fired (before or during — callers bail out with `status()`).
  bool SleepFor(std::chrono::microseconds duration) const;

 private:
  friend class CancelSource;

  std::shared_ptr<internal::CancelState> state_;  ///< null ⇒ not cancellable
  TimePoint deadline_ = TimePoint::max();
};

/// The owning side: hand `token()` down the call chain, call
/// `RequestCancel` when the caller gives up. Copies of the source share the
/// same state. Thread-safe.
class CancelSource {
 public:
  CancelSource();

  CancelToken token() const;

  /// Fires the token (idempotent — the first reason wins) and wakes every
  /// SleepFor in progress.
  void RequestCancel(Status reason = Status::Cancelled("cancelled by caller"));

  bool cancel_requested() const;

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace piye

#endif  // PIYE_COMMON_CANCEL_H_

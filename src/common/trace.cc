#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace piye {
namespace trace {

namespace {

/// Bucket i covers [2^(i-1), 2^i) microseconds, with bucket 0 = [0, 1).
size_t BucketIndex(double micros) {
  if (micros < 1.0) return 0;
  const size_t idx = static_cast<size_t>(std::log2(micros)) + 1;
  return std::min(idx, Histogram::kBuckets - 1);
}

double BucketUpperBound(size_t index) {
  return std::ldexp(1.0, static_cast<int>(index));  // 2^index
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// JSON string escaping for metric names: quotes, backslashes, and control
/// characters. Without this, a name containing `"` or `\` produced output no
/// strict parser would accept.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// --- Trace ---

void Trace::Record(const std::string& stage, double micros) {
  MutexLock lock(mu_);
  timings_.push_back({stage, micros});
}

std::vector<StageTiming> Trace::timings() const {
  MutexLock lock(mu_);
  return timings_;
}

// --- Histogram ---

void Histogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  ++buckets_[BucketIndex(micros)];
  if (count_ == 0 || micros < min_) min_ = micros;
  if (micros > max_) max_ = micros;
  ++count_;
  sum_ += micros;
}

double Histogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(std::ceil(p * count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

// --- MetricsRegistry ---

MetricsRegistry::Counter* MetricsRegistry::RegisterCounter(
    const std::string& name) {
  CounterStripe& stripe = counter_stripes_[StripeOf(name)];
  {
    ReaderMutexLock lock(stripe.mu);
    auto it = stripe.counters.find(name);
    if (it != stripe.counters.end()) return it->second.get();
  }
  WriterMutexLock lock(stripe.mu);
  auto [it, inserted] =
      stripe.counters.try_emplace(name, std::make_unique<Counter>(0));
  (void)inserted;
  return it->second.get();
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  CounterStripe& stripe = counter_stripes_[StripeOf(name)];
  {
    ReaderMutexLock lock(stripe.mu);
    auto it = stripe.counters.find(name);
    if (it != stripe.counters.end()) {
      it->second->fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  RegisterCounter(name)->fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::DeclareLatency(const std::string& name) {
  LatencyStripe& stripe = latency_stripes_[StripeOf(name)];
  MutexLock lock(stripe.mu);
  stripe.latencies.try_emplace(name);
}

void MetricsRegistry::RecordLatency(const std::string& name, double micros) {
  LatencyStripe& stripe = latency_stripes_[StripeOf(name)];
  MutexLock lock(stripe.mu);
  stripe.latencies[name].Record(micros);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  const CounterStripe& stripe = counter_stripes_[StripeOf(name)];
  ReaderMutexLock lock(stripe.mu);
  auto it = stripe.counters.find(name);
  return it == stripe.counters.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

Histogram MetricsRegistry::latency(const std::string& name) const {
  const LatencyStripe& stripe = latency_stripes_[StripeOf(name)];
  MutexLock lock(stripe.mu);
  auto it = stripe.latencies.find(name);
  return it == stripe.latencies.end() ? Histogram() : it->second;
}

std::string MetricsRegistry::ToJson() const {
  // Gather striped state into ordered maps first (one stripe lock at a
  // time), so the output is sorted and deterministic regardless of striping.
  std::map<std::string, uint64_t> counters;
  for (const CounterStripe& stripe : counter_stripes_) {
    ReaderMutexLock lock(stripe.mu);
    for (const auto& [name, cell] : stripe.counters) {
      counters[name] = cell->load(std::memory_order_relaxed);
    }
  }
  std::map<std::string, Histogram> latencies;
  for (const LatencyStripe& stripe : latency_stripes_) {
    MutexLock lock(stripe.mu);
    for (const auto& [name, hist] : stripe.latencies) latencies[name] = hist;
  }

  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"latencies\": {";
  first = true;
  for (const auto& [name, hist] : latencies) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": {";
    out += "\"count\": " + std::to_string(hist.count());
    if (hist.count() == 0) {
      // Explicit zeros: an empty histogram has no samples to summarize, and
      // emitting member-variable defaults here once leaked nonsense like a
      // "min" with no recorded value.
      out += ", \"sum_micros\": 0.000, \"min_micros\": 0.000"
             ", \"max_micros\": 0.000, \"mean_micros\": 0.000"
             ", \"p50_micros\": 0.000, \"p95_micros\": 0.000"
             ", \"p99_micros\": 0.000";
    } else {
      out += ", \"sum_micros\": " + FormatDouble(hist.sum_micros());
      out += ", \"min_micros\": " + FormatDouble(hist.min_micros());
      out += ", \"max_micros\": " + FormatDouble(hist.max_micros());
      out += ", \"mean_micros\": " + FormatDouble(hist.mean_micros());
      out += ", \"p50_micros\": " + FormatDouble(hist.PercentileMicros(0.50));
      out += ", \"p95_micros\": " + FormatDouble(hist.PercentileMicros(0.95));
      out += ", \"p99_micros\": " + FormatDouble(hist.PercentileMicros(0.99));
    }
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  for (CounterStripe& stripe : counter_stripes_) {
    WriterMutexLock lock(stripe.mu);
    for (auto& [name, cell] : stripe.counters) {
      cell->store(0, std::memory_order_relaxed);
    }
  }
  for (LatencyStripe& stripe : latency_stripes_) {
    MutexLock lock(stripe.mu);
    stripe.latencies.clear();
  }
}

// --- ScopedSpan ---

ScopedSpan::ScopedSpan(std::string stage, Trace* trace, MetricsRegistry* registry)
    : stage_(std::move(stage)),
      trace_(trace),
      registry_(registry),
      start_(std::chrono::steady_clock::now()) {}

double ScopedSpan::Stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const auto now = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_).count() /
      1000.0;
  if (trace_ != nullptr) trace_->Record(stage_, micros);
  if (registry_ != nullptr) registry_->RecordLatency("stage." + stage_, micros);
  return micros;
}

ScopedSpan::~ScopedSpan() { Stop(); }

}  // namespace trace
}  // namespace piye

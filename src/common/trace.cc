#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace piye {
namespace trace {

namespace {

/// Bucket i covers [2^(i-1), 2^i) microseconds, with bucket 0 = [0, 1).
size_t BucketIndex(double micros) {
  if (micros < 1.0) return 0;
  const size_t idx = static_cast<size_t>(std::log2(micros)) + 1;
  return std::min(idx, Histogram::kBuckets - 1);
}

double BucketUpperBound(size_t index) {
  return std::ldexp(1.0, static_cast<int>(index));  // 2^index
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

// --- Trace ---

void Trace::Record(const std::string& stage, double micros) {
  std::lock_guard<std::mutex> lock(mu_);
  timings_.push_back({stage, micros});
}

std::vector<StageTiming> Trace::timings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timings_;
}

// --- Histogram ---

void Histogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  ++buckets_[BucketIndex(micros)];
  if (count_ == 0 || micros < min_) min_ = micros;
  if (micros > max_) max_ = micros;
  ++count_;
  sum_ += micros;
}

double Histogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(std::ceil(p * count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

// --- MetricsRegistry ---

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::RecordLatency(const std::string& name, double micros) {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_[name].Record(micros);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram MetricsRegistry::latency(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  return it == latencies_.end() ? Histogram() : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(value);
  }
  out += "}, \"latencies\": {";
  first = true;
  for (const auto& [name, hist] : latencies_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {";
    out += "\"count\": " + std::to_string(hist.count());
    out += ", \"sum_micros\": " + FormatDouble(hist.sum_micros());
    out += ", \"min_micros\": " + FormatDouble(hist.min_micros());
    out += ", \"max_micros\": " + FormatDouble(hist.max_micros());
    out += ", \"mean_micros\": " + FormatDouble(hist.mean_micros());
    out += ", \"p50_micros\": " + FormatDouble(hist.PercentileMicros(0.50));
    out += ", \"p95_micros\": " + FormatDouble(hist.PercentileMicros(0.95));
    out += ", \"p99_micros\": " + FormatDouble(hist.PercentileMicros(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  latencies_.clear();
}

// --- ScopedSpan ---

ScopedSpan::ScopedSpan(std::string stage, Trace* trace, MetricsRegistry* registry)
    : stage_(std::move(stage)),
      trace_(trace),
      registry_(registry),
      start_(std::chrono::steady_clock::now()) {}

double ScopedSpan::Stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const auto now = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_).count() /
      1000.0;
  if (trace_ != nullptr) trace_->Record(stage_, micros);
  if (registry_ != nullptr) registry_->RecordLatency("stage." + stage_, micros);
  return micros;
}

ScopedSpan::~ScopedSpan() { Stop(); }

}  // namespace trace
}  // namespace piye

#ifndef PIYE_COMMON_STRINGS_H_
#define PIYE_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace piye {
namespace strings {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Levenshtein edit distance.
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity in [0,1]: 1 - dist/max(len).
double EditSimilarity(std::string_view a, std::string_view b);

/// Character q-grams of a string (padded with '#'), used by the private
/// approximate-matching protocols.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Jaccard similarity of the q-gram sets of two strings.
double QGramJaccard(std::string_view a, std::string_view b, size_t q);

/// Splits identifiers like "dateOfBirth", "date_of_birth", "date-of-birth"
/// into lower-case tokens {"date","of","birth"} — the tokenizer used by the
/// name-based schema matcher.
std::vector<std::string> TokenizeIdentifier(std::string_view ident);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// FNV-1a 64-bit hash — stable across platforms and runs (unlike
/// std::hash), so it is usable for deriving deterministic per-call RNG
/// streams from serialized queries.
uint64_t Fnv1a64(std::string_view s);

}  // namespace strings
}  // namespace piye

#endif  // PIYE_COMMON_STRINGS_H_

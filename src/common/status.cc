#include "common/status.h"

namespace piye {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kPrivacyViolation:
      return "PrivacyViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace piye

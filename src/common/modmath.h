#ifndef PIYE_COMMON_MODMATH_H_
#define PIYE_COMMON_MODMATH_H_

#include <cstddef>
#include <cstdint>

namespace piye {

/// Modular arithmetic over 64-bit moduli (via unsigned __int128), the number
/// theory underlying the commutative-cipher PSI protocol in `linkage`.
///
/// The linkage protocols operate in the prime-order subgroup of Z_p^* for the
/// safe prime `kSafePrime` below. 61-bit keys obviously do not offer
/// cryptographic strength; the point of this substrate (see DESIGN.md) is to
/// execute the *protocol* — same message pattern, same cost shape — without an
/// external big-integer dependency.
namespace modmath {

/// The largest safe prime p = 2q + 1 (both p and q prime) below 2^61; the
/// certificate test in tests/common_test.cc re-verifies both primality claims.
extern const uint64_t kSafePrime;

/// The subgroup order q = (p-1)/2.
extern const uint64_t kSubgroupOrder;

/// A generator of the order-q subgroup of Z_p^*.
extern const uint64_t kSubgroupGenerator;

/// (a * b) mod m without overflow.
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

/// Multiplicative inverse of a mod m (m prime), via Fermat.
uint64_t InvMod(uint64_t a, uint64_t m);

/// Greatest common divisor.
uint64_t Gcd(uint64_t a, uint64_t b);

/// Deterministic Miller–Rabin primality test, exact for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// Hashes an arbitrary string into the order-q subgroup (quadratic residues
/// of Z_p^*) by hashing then squaring.
uint64_t HashToGroup(const char* data, size_t len);

}  // namespace modmath
}  // namespace piye

#endif  // PIYE_COMMON_MODMATH_H_

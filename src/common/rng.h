#ifndef PIYE_COMMON_RNG_H_
#define PIYE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace piye {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library takes an explicit `Rng&` so that
/// experiments and tests are reproducible from a seed; library code never
/// touches the global C/C++ RNG or the wall clock.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Box–Muller, cached pair).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Laplace(0, scale) variate — the noise primitive used by output
  /// perturbation.
  double NextLaplace(double scale);

  /// Poisson variate with the given rate (Knuth's method; fine for rate<50).
  int NextPoisson(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace piye

#endif  // PIYE_COMMON_RNG_H_

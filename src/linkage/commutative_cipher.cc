#include "linkage/commutative_cipher.h"

#include "common/modmath.h"

namespace piye {
namespace linkage {

using modmath::kSafePrime;
using modmath::kSubgroupOrder;

CommutativeCipher::CommutativeCipher(Rng* rng) {
  // Exponent in [2, q-1]; q is prime so any such exponent is invertible.
  key_ = 2 + rng->NextBounded(kSubgroupOrder - 2);
  inverse_key_ = modmath::PowMod(key_, kSubgroupOrder - 2, kSubgroupOrder);
}

CommutativeCipher::CommutativeCipher(uint64_t key) {
  key_ = key % kSubgroupOrder;
  if (key_ < 2) key_ = 2;
  inverse_key_ = modmath::PowMod(key_, kSubgroupOrder - 2, kSubgroupOrder);
}

uint64_t CommutativeCipher::Encrypt(uint64_t element) const {
  return modmath::PowMod(element, key_, kSafePrime);
}

uint64_t CommutativeCipher::Decrypt(uint64_t element) const {
  return modmath::PowMod(element, inverse_key_, kSafePrime);
}

uint64_t CommutativeCipher::HashToGroup(std::string_view s) {
  return modmath::HashToGroup(s.data(), s.size());
}

}  // namespace linkage
}  // namespace piye

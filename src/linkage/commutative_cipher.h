#ifndef PIYE_LINKAGE_COMMUTATIVE_CIPHER_H_
#define PIYE_LINKAGE_COMMUTATIVE_CIPHER_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace piye {
namespace linkage {

/// Pohlig–Hellman-style commutative cipher over the prime-order subgroup of
/// Z_p^* (p = modmath::kSafePrime): Enc_k(m) = m^k mod p.
///
/// Commutativity — Enc_a(Enc_b(m)) = Enc_b(Enc_a(m)) = m^(ab) — is exactly
/// what the Agrawal–Evfimievski–Srikant information-sharing protocol [8]
/// needs: two parties can blind each other's hashed keys and compare the
/// doubly-blinded values without either seeing the other's plaintexts.
///
/// NOTE: the 61-bit group is a *simulation-scale* parameter (see DESIGN.md);
/// the protocol structure and cost shape match a production 2048-bit group,
/// the concrete security level does not.
class CommutativeCipher {
 public:
  /// Draws a random exponent key in [2, q-1].
  explicit CommutativeCipher(Rng* rng);
  /// Uses a fixed exponent (tests).
  explicit CommutativeCipher(uint64_t key);

  /// Encrypts a group element.
  uint64_t Encrypt(uint64_t element) const;

  /// Removes this cipher's layer (works regardless of layering order —
  /// that is the point of commutativity).
  uint64_t Decrypt(uint64_t element) const;

  /// Hashes an arbitrary string into the group (all parties must use the
  /// same encoding before encrypting).
  static uint64_t HashToGroup(std::string_view s);

  uint64_t key() const { return key_; }

 private:
  uint64_t key_;
  uint64_t inverse_key_;
};

}  // namespace linkage
}  // namespace piye

#endif  // PIYE_LINKAGE_COMMUTATIVE_CIPHER_H_

#include "linkage/record_linkage.h"

#include <map>
#include <set>

#include "common/macros.h"

namespace piye {
namespace linkage {

Result<std::string> PrivateRecordLinkage::KeyOf(const relational::Table& table,
                                                size_t row) const {
  std::string key;
  for (const auto& col : key_columns_) {
    PIYE_ASSIGN_OR_RETURN(relational::Value v, table.At(row, col));
    if (!key.empty()) key += '\x1f';
    key += v.ToDisplayString();
  }
  return key;
}

Result<std::vector<LinkedPair>> PrivateRecordLinkage::Link(
    const relational::Table& left, const relational::Table& right) const {
  // Build key lists for both sides.
  std::vector<std::string> left_keys(left.num_rows());
  std::vector<std::string> right_keys(right.num_rows());
  for (size_t r = 0; r < left.num_rows(); ++r) {
    PIYE_ASSIGN_OR_RETURN(left_keys[r], KeyOf(left, r));
  }
  for (size_t r = 0; r < right.num_rows(); ++r) {
    PIYE_ASSIGN_OR_RETURN(right_keys[r], KeyOf(right, r));
  }
  PIYE_ASSIGN_OR_RETURN(std::vector<std::string> matched,
                        protocol_->Intersect(left_keys, right_keys));
  const std::set<std::string> matched_set(matched.begin(), matched.end());
  // Pair up rows whose key is in the intersection.
  std::map<std::string, std::vector<size_t>> right_by_key;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (matched_set.count(right_keys[r]) != 0) right_by_key[right_keys[r]].push_back(r);
  }
  std::vector<LinkedPair> out;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    auto it = right_by_key.find(left_keys[l]);
    if (it == right_by_key.end()) continue;
    for (size_t r : it->second) out.push_back({l, r, 1.0});
  }
  return out;
}

Result<std::vector<LinkedPair>> PrivateRecordLinkage::LinkApproximate(
    const relational::Table& left, const relational::Table& right,
    const BloomEncoder& encoder, double dice_threshold) const {
  auto encode_row = [&](const relational::Table& t, size_t row) -> Result<BloomFilter> {
    std::vector<std::string> fields;
    for (const auto& col : key_columns_) {
      PIYE_ASSIGN_OR_RETURN(relational::Value v, t.At(row, col));
      fields.push_back(v.ToDisplayString());
    }
    return encoder.Encode(fields);
  };
  std::vector<BloomFilter> left_filters, right_filters;
  left_filters.reserve(left.num_rows());
  right_filters.reserve(right.num_rows());
  for (size_t r = 0; r < left.num_rows(); ++r) {
    PIYE_ASSIGN_OR_RETURN(BloomFilter f, encode_row(left, r));
    left_filters.push_back(std::move(f));
  }
  for (size_t r = 0; r < right.num_rows(); ++r) {
    PIYE_ASSIGN_OR_RETURN(BloomFilter f, encode_row(right, r));
    right_filters.push_back(std::move(f));
  }
  std::vector<LinkedPair> out;
  for (size_t l = 0; l < left_filters.size(); ++l) {
    for (size_t r = 0; r < right_filters.size(); ++r) {
      const double dice = BloomFilter::DiceSimilarity(left_filters[l], right_filters[r]);
      if (dice >= dice_threshold) out.push_back({l, r, dice});
    }
  }
  return out;
}

Result<relational::Table> DeduplicateByKey(
    const relational::Table& input, const std::vector<std::string>& key_columns) {
  std::vector<size_t> idx;
  for (const auto& col : key_columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(col));
    idx.push_back(i);
  }
  relational::Table out(input.schema());
  std::set<std::string> seen;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::string key;
    for (size_t i : idx) {
      if (!key.empty()) key += '\x1f';
      key += input.row(r)[i].ToDisplayString();
    }
    if (seen.insert(key).second) out.AppendRowUnchecked(input.row(r));
  }
  return out;
}

}  // namespace linkage
}  // namespace piye

#ifndef PIYE_LINKAGE_PSI_H_
#define PIYE_LINKAGE_PSI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace piye {
namespace linkage {

/// Statistics a PSI run reports alongside the intersection, so benchmarks
/// can compare protocol cost and leakage surface.
struct PsiStats {
  size_t messages_exchanged = 0;   ///< logical protocol messages
  size_t bytes_exchanged = 0;      ///< 8 bytes per transmitted group element/digest
  size_t crypto_operations = 0;    ///< modular exponentiations / hashes
};

/// Private set intersection between two string multisets (duplicates are
/// deduplicated internally; the result is the set intersection). Every
/// protocol returns the matching *input strings of party A* — mirroring the
/// mediator's use, where party A is the integrator that must recognize which
/// of its candidate records matched.
class PsiProtocol {
 public:
  virtual ~PsiProtocol() = default;

  virtual Result<std::vector<std::string>> Intersect(
      const std::vector<std::string>& party_a,
      const std::vector<std::string>& party_b) = 0;

  const PsiStats& stats() const { return stats_; }

  /// What an eavesdropper (or the counterpart) learns beyond the
  /// intersection — documentation surfaced by the abl-psi benchmark.
  virtual const char* LeakageNote() const = 0;

 protected:
  PsiStats stats_;
};

/// Baseline: exchange plaintext values and hash-join. No privacy at all —
/// the comparator the crypto protocols are measured against.
class PlaintextJoin : public PsiProtocol {
 public:
  Result<std::vector<std::string>> Intersect(
      const std::vector<std::string>& party_a,
      const std::vector<std::string>& party_b) override;
  const char* LeakageNote() const override {
    return "entire input sets are revealed to both parties";
  }
};

/// Hash-PSI: parties exchange (optionally salted) SHA-256 digests. Cheap,
/// but digests of low-entropy identifiers fall to dictionary attacks; the
/// shared salt only keeps third parties out, not the counterpart.
class HashPsi : public PsiProtocol {
 public:
  explicit HashPsi(std::string shared_salt = "") : salt_(std::move(shared_salt)) {}

  Result<std::vector<std::string>> Intersect(
      const std::vector<std::string>& party_a,
      const std::vector<std::string>& party_b) override;
  const char* LeakageNote() const override {
    return "counterpart can dictionary-attack digests of low-entropy keys";
  }

 private:
  std::string salt_;
};

/// Commutative-encryption PSI (Agrawal–Evfimievski–Srikant, SIGMOD 2003):
/// both parties blind hashed keys with private exponents; each item crosses
/// the wire twice; the doubly-blinded values are comparable but neither
/// party can unblind the other's singles. Semi-honest secure; leaks only
/// set sizes and the intersection.
class DhPsi : public PsiProtocol {
 public:
  explicit DhPsi(uint64_t seed) : seed_(seed) {}

  Result<std::vector<std::string>> Intersect(
      const std::vector<std::string>& party_a,
      const std::vector<std::string>& party_b) override;
  const char* LeakageNote() const override {
    return "only set sizes and the intersection itself (semi-honest model)";
  }

 private:
  uint64_t seed_;
};

}  // namespace linkage
}  // namespace piye

#endif  // PIYE_LINKAGE_PSI_H_

#include "linkage/bloom.h"

#include "common/sha256.h"
#include "common/strings.h"

namespace piye {
namespace linkage {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes)
    : bits_(num_bits == 0 ? 1 : num_bits, false),
      num_hashes_(num_hashes == 0 ? 1 : num_hashes) {}

void BloomFilter::Positions(std::string_view item, std::vector<size_t>* out) const {
  // Double hashing from one SHA-256: h_i = h1 + i*h2 mod m.
  const Sha256::Digest d = Sha256::Hash(item);
  uint64_t h1 = 0, h2 = 0;
  for (int i = 0; i < 8; ++i) {
    h1 = (h1 << 8) | d[static_cast<size_t>(i)];
    h2 = (h2 << 8) | d[static_cast<size_t>(i + 8)];
  }
  if (h2 == 0) h2 = 0x9E3779B97F4A7C15ULL;
  out->clear();
  for (size_t i = 0; i < num_hashes_; ++i) {
    out->push_back((h1 + i * h2) % bits_.size());
  }
}

void BloomFilter::Insert(std::string_view item) {
  std::vector<size_t> pos;
  Positions(item, &pos);
  for (size_t p : pos) bits_[p] = true;
}

bool BloomFilter::MaybeContains(std::string_view item) const {
  std::vector<size_t> pos;
  Positions(item, &pos);
  for (size_t p : pos) {
    if (!bits_[p]) return false;
  }
  return true;
}

size_t BloomFilter::PopCount() const {
  size_t n = 0;
  for (bool b : bits_) n += b ? 1 : 0;
  return n;
}

double BloomFilter::DiceSimilarity(const BloomFilter& a, const BloomFilter& b) {
  if (a.bits_.size() != b.bits_.size()) return 0.0;
  size_t inter = 0;
  for (size_t i = 0; i < a.bits_.size(); ++i) {
    if (a.bits_[i] && b.bits_[i]) ++inter;
  }
  const size_t total = a.PopCount() + b.PopCount();
  if (total == 0) return 1.0;
  return 2.0 * static_cast<double>(inter) / static_cast<double>(total);
}

BloomFilter BloomEncoder::Encode(const std::vector<std::string>& fields) const {
  BloomFilter filter(params_.num_bits, params_.num_hashes);
  for (const auto& field : fields) {
    for (const auto& gram : strings::QGrams(field, params_.q)) {
      // Keying the grams with the shared secret blocks outsiders from
      // mounting a dictionary attack on the filters.
      filter.Insert(key_ + "|" + gram);
    }
  }
  return filter;
}

}  // namespace linkage
}  // namespace piye

#ifndef PIYE_LINKAGE_RECORD_LINKAGE_H_
#define PIYE_LINKAGE_RECORD_LINKAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "linkage/bloom.h"
#include "linkage/psi.h"
#include "relational/table.h"

namespace piye {
namespace linkage {

/// A linked pair of row indices (left table row, right table row).
struct LinkedPair {
  size_t left_row;
  size_t right_row;
  double score;  ///< 1.0 for exact protocols, Dice score for approximate
};

/// Privacy-preserving record linkage over relational tables — the machinery
/// behind the Result Integrator's duplicate elimination (Section 5: "object
/// matchings have to be done without revealing the origins of the sources or
/// the real world origins of the entities").
class PrivateRecordLinkage {
 public:
  /// `key_columns` are concatenated (with '\x1f' separators) into the
  /// linkage key of each record.
  PrivateRecordLinkage(std::vector<std::string> key_columns,
                       std::unique_ptr<PsiProtocol> protocol)
      : key_columns_(std::move(key_columns)), protocol_(std::move(protocol)) {}

  /// Exact linkage via the configured PSI protocol: only records whose keys
  /// are in the private intersection are paired.
  Result<std::vector<LinkedPair>> Link(const relational::Table& left,
                                       const relational::Table& right) const;

  /// Approximate linkage via Bloom-encoded keys and a Dice threshold —
  /// tolerant of typos and formatting drift across sources.
  Result<std::vector<LinkedPair>> LinkApproximate(const relational::Table& left,
                                                  const relational::Table& right,
                                                  const BloomEncoder& encoder,
                                                  double dice_threshold) const;

  /// Builds the linkage key of a row.
  Result<std::string> KeyOf(const relational::Table& table, size_t row) const;

  const PsiProtocol* protocol() const { return protocol_.get(); }

 private:
  std::vector<std::string> key_columns_;
  std::unique_ptr<PsiProtocol> protocol_;
};

/// Removes duplicate records across an integrated table using PSI-derived
/// keys: the first occurrence of each linkage key is kept. Used by the
/// Result Integrator after union-ing source results.
Result<relational::Table> DeduplicateByKey(const relational::Table& input,
                                           const std::vector<std::string>& key_columns);

}  // namespace linkage
}  // namespace piye

#endif  // PIYE_LINKAGE_RECORD_LINKAGE_H_

#ifndef PIYE_LINKAGE_BLOOM_H_
#define PIYE_LINKAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace piye {
namespace linkage {

/// A plain Bloom filter with double hashing (Kirsch–Mitzenmacher) over
/// SHA-256-derived hash pairs.
class BloomFilter {
 public:
  BloomFilter(size_t num_bits, size_t num_hashes);

  /// Reconstructs a filter from its raw bit vector — how a sketch's value
  /// filter is rebuilt after crossing the wire. The bits are adopted as-is;
  /// `num_hashes` must match the encoding side for membership queries to
  /// mean anything (Dice similarity only needs the bits).
  static BloomFilter FromBits(std::vector<bool> bits, size_t num_hashes) {
    BloomFilter f(1, num_hashes);
    f.bits_ = std::move(bits);
    return f;
  }

  void Insert(std::string_view item);
  bool MaybeContains(std::string_view item) const;

  size_t num_bits() const { return bits_.size(); }
  size_t num_hashes() const { return num_hashes_; }
  size_t PopCount() const;

  /// Dice coefficient of two equally sized filters: 2|A∩B| / (|A|+|B|) over
  /// set bits — the standard PPRL similarity score.
  static double DiceSimilarity(const BloomFilter& a, const BloomFilter& b);

  const std::vector<bool>& bits() const { return bits_; }

 private:
  void Positions(std::string_view item, std::vector<size_t>* out) const;

  std::vector<bool> bits_;
  size_t num_hashes_;
};

/// Schnell-style cryptographic-longterm-key encoding for privacy-preserving
/// *approximate* record linkage: a record's identifying fields are split
/// into character q-grams which are inserted into a Bloom filter keyed by a
/// shared secret. Parties exchange only the filters; Dice similarity over
/// filters approximates q-gram similarity over the underlying strings, so
/// typos ("Jon Smith" / "John Smith") still link without revealing names.
class BloomEncoder {
 public:
  struct Params {
    size_t num_bits = 512;
    size_t num_hashes = 4;
    size_t q = 2;  ///< q-gram length
  };

  BloomEncoder(std::string shared_key, Params params)
      : key_(std::move(shared_key)), params_(params) {}

  /// Encodes the concatenated identifying fields of a record.
  BloomFilter Encode(const std::vector<std::string>& fields) const;

  const Params& params() const { return params_; }

 private:
  std::string key_;
  Params params_;
};

}  // namespace linkage
}  // namespace piye

#endif  // PIYE_LINKAGE_BLOOM_H_

#include "linkage/psi.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/sha256.h"
#include "linkage/commutative_cipher.h"

namespace piye {
namespace linkage {

Result<std::vector<std::string>> PlaintextJoin::Intersect(
    const std::vector<std::string>& party_a, const std::vector<std::string>& party_b) {
  stats_ = {};
  std::unordered_set<std::string> b_set(party_b.begin(), party_b.end());
  stats_.messages_exchanged = 1;
  for (const auto& s : party_b) stats_.bytes_exchanged += s.size();
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& a : party_a) {
    if (b_set.count(a) != 0 && seen.insert(a).second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> HashPsi::Intersect(
    const std::vector<std::string>& party_a, const std::vector<std::string>& party_b) {
  stats_ = {};
  auto digest = [this](const std::string& s) {
    ++stats_.crypto_operations;
    return Sha256::Hash64(salt_ + s);
  };
  std::unordered_set<uint64_t> b_digests;
  for (const auto& b : party_b) b_digests.insert(digest(b));
  stats_.messages_exchanged = 1;
  stats_.bytes_exchanged = 8 * b_digests.size();
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& a : party_a) {
    if (b_digests.count(digest(a)) != 0 && seen.insert(a).second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> DhPsi::Intersect(
    const std::vector<std::string>& party_a, const std::vector<std::string>& party_b) {
  stats_ = {};
  Rng rng(seed_);
  const CommutativeCipher cipher_a(&rng);
  const CommutativeCipher cipher_b(&rng);

  // Round 1: A hashes and blinds its items, sends E_a(H(x)) to B.
  // (Kept in A's input order so A can map doubly-blinded values back.)
  std::vector<std::string> a_items;
  {
    std::unordered_set<std::string> seen;
    for (const auto& a : party_a) {
      if (seen.insert(a).second) a_items.push_back(a);
    }
  }
  std::vector<uint64_t> a_blinded;
  a_blinded.reserve(a_items.size());
  for (const auto& a : a_items) {
    a_blinded.push_back(cipher_a.Encrypt(CommutativeCipher::HashToGroup(a)));
    stats_.crypto_operations += 2;
  }
  ++stats_.messages_exchanged;
  stats_.bytes_exchanged += 8 * a_blinded.size();

  // Round 2: B double-blinds A's values (returning them in A's order) and
  // sends its own singly-blinded set.
  std::vector<uint64_t> a_double;
  a_double.reserve(a_blinded.size());
  for (uint64_t v : a_blinded) {
    a_double.push_back(cipher_b.Encrypt(v));
    ++stats_.crypto_operations;
  }
  std::set<uint64_t> b_blinded;
  for (const auto& b : party_b) {
    b_blinded.insert(cipher_b.Encrypt(CommutativeCipher::HashToGroup(b)));
    stats_.crypto_operations += 2;
  }
  ++stats_.messages_exchanged;
  stats_.bytes_exchanged += 8 * (a_double.size() + b_blinded.size());

  // Round 3: A double-blinds B's set and intersects.
  std::unordered_set<uint64_t> b_double;
  for (uint64_t v : b_blinded) {
    b_double.insert(cipher_a.Encrypt(v));
    ++stats_.crypto_operations;
  }
  std::vector<std::string> out;
  for (size_t i = 0; i < a_items.size(); ++i) {
    if (b_double.count(a_double[i]) != 0) out.push_back(a_items[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace linkage
}  // namespace piye

#ifndef PIYE_PERTURB_SPECTRAL_FILTER_H_
#define PIYE_PERTURB_SPECTRAL_FILTER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace piye {
namespace perturb {

/// Dense symmetric eigendecomposition by cyclic Jacobi rotations — small and
/// exact enough for the attack below (matrices here are #attributes-square).
struct EigenDecomposition {
  std::vector<double> eigenvalues;               ///< descending
  std::vector<std::vector<double>> eigenvectors; ///< eigenvectors[i] matches eigenvalues[i]
};

Result<EigenDecomposition> JacobiEigen(const std::vector<std::vector<double>>& sym,
                                       size_t max_sweeps = 64);

/// The Kargupta et al. spectral filtering attack (ICDM 2003, reference [29]):
/// additive i.i.d. noise spreads uniformly over the covariance spectrum, but
/// correlated data concentrates in a few principal components. Projecting
/// the perturbed records onto the high-signal eigenspace removes most of the
/// noise — demonstrating the paper's point that "data perturbation
/// techniques ... are not foolproof in protecting data privacy".
class SpectralFilter {
 public:
  /// `noise_variance` is the (known or estimated) variance of the additive
  /// noise applied per attribute.
  explicit SpectralFilter(double noise_variance) : noise_variance_(noise_variance) {}

  /// `perturbed` is row-major: records x attributes. Returns the filtered
  /// estimate of the original records. Eigenvalues within `noise_variance`
  /// of the noise floor are discarded.
  Result<std::vector<std::vector<double>>> Filter(
      const std::vector<std::vector<double>>& perturbed) const;

  /// Mean per-entry RMSE between two record matrices — used to compare the
  /// attack's recovery error against the noise scale.
  static double MatrixRmse(const std::vector<std::vector<double>>& a,
                           const std::vector<std::vector<double>>& b);

 private:
  double noise_variance_;
};

}  // namespace perturb
}  // namespace piye

#endif  // PIYE_PERTURB_SPECTRAL_FILTER_H_

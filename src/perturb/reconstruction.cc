#include "perturb/reconstruction.h"

#include <cmath>

namespace piye {
namespace perturb {

Result<std::vector<double>> DistributionReconstructor::Reconstruct(
    const std::vector<double>& perturbed, const AdditiveNoise& noise,
    size_t max_iters, double tol) const {
  if (bins_ == 0 || hi_ <= lo_) {
    return Status::InvalidArgument("bad reconstruction grid");
  }
  if (perturbed.empty()) {
    return Status::InvalidArgument("no perturbed samples");
  }
  const size_t n = perturbed.size();
  // Precompute noise densities: dens[i][a] = f_noise(w_i - center_a).
  std::vector<std::vector<double>> dens(n, std::vector<double>(bins_));
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < bins_; ++a) {
      dens[i][a] = noise.NoiseDensity(perturbed[i] - bucket_center(a));
    }
  }
  std::vector<double> f(bins_, 1.0 / static_cast<double>(bins_));
  std::vector<double> next(bins_);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      double denom = 0.0;
      for (size_t b = 0; b < bins_; ++b) denom += dens[i][b] * f[b];
      if (denom <= 0.0) continue;
      for (size_t a = 0; a < bins_; ++a) {
        next[a] += dens[i][a] * f[a] / denom;
      }
    }
    double total = 0.0;
    for (double x : next) total += x;
    if (total <= 0.0) return Status::Internal("reconstruction collapsed to zero");
    for (double& x : next) x /= total;
    const double delta = L1Distance(f, next);
    f = next;
    if (delta < tol) break;
  }
  return f;
}

std::vector<double> DistributionReconstructor::Bucketize(
    const std::vector<double>& xs) const {
  std::vector<double> f(bins_, 0.0);
  if (xs.empty()) return f;
  const double width = (hi_ - lo_) / static_cast<double>(bins_);
  for (double x : xs) {
    long b = static_cast<long>((x - lo_) / width);
    if (b < 0) b = 0;
    if (b >= static_cast<long>(bins_)) b = static_cast<long>(bins_) - 1;
    f[static_cast<size_t>(b)] += 1.0;
  }
  for (double& p : f) p /= static_cast<double>(xs.size());
  return f;
}

double DistributionReconstructor::L1Distance(const std::vector<double>& a,
                                             const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace perturb
}  // namespace piye

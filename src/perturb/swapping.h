#ifndef PIYE_PERTURB_SWAPPING_H_
#define PIYE_PERTURB_SWAPPING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/table.h"

namespace piye {
namespace perturb {

/// Rank swapping: sort a numeric column, then swap each value with a random
/// partner whose rank is within `window_pct` percent of its own. Marginal
/// distributions are preserved exactly (the multiset of values is unchanged)
/// while record-to-value linkage is broken; cross-column correlations decay
/// with the window size.
class RankSwapper {
 public:
  explicit RankSwapper(double window_pct) : window_pct_(window_pct) {}

  /// Swaps within the column, returning the new values in original row order.
  std::vector<double> Swap(const std::vector<double>& xs, Rng* rng) const;

  /// Applies to a numeric table column in place.
  Status SwapColumn(relational::Table* table, const std::string& column,
                    Rng* rng) const;

 private:
  double window_pct_;
};

/// Univariate microaggregation: sort, group into consecutive runs of at
/// least `k` values, replace each value by its group mean. Every released
/// value is shared by >= k records — the numeric analogue of k-anonymity.
class Microaggregator {
 public:
  explicit Microaggregator(size_t k) : k_(k) {}

  std::vector<double> Aggregate(const std::vector<double>& xs) const;

  Status AggregateColumn(relational::Table* table, const std::string& column) const;

  /// Within-group sum of squared errors of the released values — the
  /// information-loss metric (lower is better utility).
  static double SumOfSquaredErrors(const std::vector<double>& original,
                                   const std::vector<double>& released);

 private:
  size_t k_;
};

}  // namespace perturb
}  // namespace piye

#endif  // PIYE_PERTURB_SWAPPING_H_

#include "perturb/randomized_response.h"

#include <cmath>

namespace piye {
namespace perturb {

std::vector<bool> RandomizedResponse::RandomizeAll(const std::vector<bool>& truths,
                                                   Rng* rng) const {
  std::vector<bool> out;
  out.reserve(truths.size());
  for (bool t : truths) out.push_back(Randomize(t, rng));
  return out;
}

Result<double> RandomizedResponse::EstimateProportion(
    const std::vector<bool>& reports) const {
  if (std::fabs(p_ - 0.5) < 1e-12) {
    return Status::InvalidArgument("p = 0.5 destroys all information");
  }
  if (reports.empty()) return Status::InvalidArgument("no reports");
  double yes = 0.0;
  for (bool r : reports) yes += r ? 1.0 : 0.0;
  const double rate = yes / static_cast<double>(reports.size());
  const double est = (rate + p_ - 1.0) / (2.0 * p_ - 1.0);
  return std::min(1.0, std::max(0.0, est));
}

double RandomizedResponse::PosteriorGivenYes(double prior_proportion) const {
  // P(true | yes) = P(yes | true) P(true) / P(yes)
  const double pi = prior_proportion;
  const double p_yes = p_ * pi + (1.0 - p_) * (1.0 - pi);
  if (p_yes <= 0.0) return 0.0;
  return p_ * pi / p_yes;
}

size_t CategoricalRandomizedResponse::Randomize(size_t truth, Rng* rng) const {
  if (k_ < 2 || rng->NextBernoulli(p_)) return truth;
  // Uniform over the other k-1 categories.
  size_t other = rng->NextBounded(k_ - 1);
  if (other >= truth) ++other;
  return other;
}

Result<std::vector<double>> CategoricalRandomizedResponse::EstimateFrequencies(
    const std::vector<size_t>& reports) const {
  if (k_ < 2) return Status::InvalidArgument("need at least 2 categories");
  const double q = (1.0 - p_) / static_cast<double>(k_ - 1);
  if (std::fabs(p_ - q) < 1e-12) {
    return Status::InvalidArgument("keep probability destroys all information");
  }
  if (reports.empty()) return Status::InvalidArgument("no reports");
  std::vector<double> observed(k_, 0.0);
  for (size_t r : reports) {
    if (r >= k_) return Status::OutOfRange("report category out of range");
    observed[r] += 1.0;
  }
  for (double& o : observed) o /= static_cast<double>(reports.size());
  // observed = q + (p - q) * truth  componentwise (since sum(truth)=1).
  std::vector<double> est(k_);
  for (size_t i = 0; i < k_; ++i) {
    est[i] = (observed[i] - q) / (p_ - q);
    est[i] = std::min(1.0, std::max(0.0, est[i]));
  }
  // Renormalize after clamping.
  double total = 0.0;
  for (double e : est) total += e;
  if (total > 0.0) {
    for (double& e : est) e /= total;
  }
  return est;
}

}  // namespace perturb
}  // namespace piye

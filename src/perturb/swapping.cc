#include "perturb/swapping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace piye {
namespace perturb {

std::vector<double> RankSwapper::Swap(const std::vector<double>& xs, Rng* rng) const {
  const size_t n = xs.size();
  if (n < 2) return xs;
  // Sort (value, original index) pairs in one contiguous buffer — every
  // comparison touches adjacent memory, unlike an indirect index sort that
  // chases xs[] randomly. The index doubles as a deterministic tie-break.
  std::vector<std::pair<double, uint32_t>> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = {xs[i], static_cast<uint32_t>(i)};
  std::sort(sorted.begin(), sorted.end());
  // Swap values within rank windows.
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(window_pct_ / 100.0 * static_cast<double>(n))));
  for (size_t r = 0; r + 1 < n; ++r) {
    const size_t hi = std::min(n - 1, r + window);
    const size_t partner = r + rng->NextBounded(hi - r + 1);
    std::swap(sorted[r].first, sorted[partner].first);
  }
  std::vector<double> out(n);
  for (size_t r = 0; r < n; ++r) out[sorted[r].second] = sorted[r].first;
  return out;
}

Status RankSwapper::SwapColumn(relational::Table* table, const std::string& column,
                               Rng* rng) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  const relational::ColumnType type = table->schema().column(col).type;
  const relational::ColumnVector& c = table->col(col);
  const size_t n = table->num_rows();
  if (type != relational::ColumnType::kInt64 &&
      type != relational::ColumnType::kDouble) {
    // Matches the row engine: a non-numeric column only errors if it holds
    // an actual (non-NULL) value.
    if (c.CountValid() == 0) return Status::OK();
    return Status::InvalidArgument("column '" + column + "' is not numeric");
  }
  // NULL-aware column scan with an explicit row<->value index map: value j
  // of the dense vector belongs to table row rows[j]. The swapped values
  // are scattered back through that map, so NULL rows keep their slots and
  // non-NULL rows get exactly their own swapped value — a raw write-back by
  // value index would misalign as soon as NULLs are interleaved.
  std::vector<double> xs;
  std::vector<uint32_t> rows;
  xs.reserve(n);
  rows.reserve(n);
  const bool is_int = type == relational::ColumnType::kInt64;
  for (size_t i = 0; i < n; ++i) {
    if (c.IsNull(i)) continue;
    xs.push_back(is_int ? static_cast<double>(c.IntAt(i)) : c.RealAt(i));
    rows.push_back(static_cast<uint32_t>(i));
  }
  const std::vector<double> swapped = Swap(xs, rng);
  relational::ColumnVector* mc = table->MutableColumn(col);
  if (is_int) {
    int64_t* vals = mc->mutable_ints();
    for (size_t j = 0; j < rows.size(); ++j) {
      vals[rows[j]] = static_cast<int64_t>(std::llround(swapped[j]));
    }
  } else {
    double* vals = mc->mutable_reals();
    for (size_t j = 0; j < rows.size(); ++j) vals[rows[j]] = swapped[j];
  }
  return Status::OK();
}

std::vector<double> Microaggregator::Aggregate(const std::vector<double>& xs) const {
  const size_t n = xs.size();
  if (n == 0 || k_ <= 1) return xs;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n);
  size_t start = 0;
  while (start < n) {
    size_t end = start + k_;
    // Last group absorbs the remainder so no group is smaller than k.
    if (end > n || n - end < k_) end = n;
    double mean = 0.0;
    for (size_t r = start; r < end; ++r) mean += xs[order[r]];
    mean /= static_cast<double>(end - start);
    for (size_t r = start; r < end; ++r) out[order[r]] = mean;
    start = end;
  }
  return out;
}

Status Microaggregator::AggregateColumn(relational::Table* table,
                                        const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(std::vector<double> xs, table->NumericColumn(column));
  if (xs.size() != table->num_rows()) {
    return Status::InvalidArgument("microaggregation requires no NULLs in column");
  }
  const std::vector<double> agg = Aggregate(xs);
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  const bool is_int =
      table->schema().column(col).type == relational::ColumnType::kInt64;
  // No NULLs (checked above): the dense result maps 1:1 onto the column
  // buffer, so write straight through the typed pointer.
  relational::ColumnVector* mc = table->MutableColumn(col);
  if (is_int) {
    int64_t* vals = mc->mutable_ints();
    for (size_t i = 0; i < agg.size(); ++i) {
      vals[i] = static_cast<int64_t>(std::llround(agg[i]));
    }
  } else {
    double* vals = mc->mutable_reals();
    for (size_t i = 0; i < agg.size(); ++i) vals[i] = agg[i];
  }
  return Status::OK();
}

double Microaggregator::SumOfSquaredErrors(const std::vector<double>& original,
                                           const std::vector<double>& released) {
  double sse = 0.0;
  for (size_t i = 0; i < original.size() && i < released.size(); ++i) {
    const double d = original[i] - released[i];
    sse += d * d;
  }
  return sse;
}

}  // namespace perturb
}  // namespace piye

#include "perturb/swapping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace piye {
namespace perturb {

std::vector<double> RankSwapper::Swap(const std::vector<double>& xs, Rng* rng) const {
  const size_t n = xs.size();
  if (n < 2) return xs;
  // Order of indices by value.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  // Sorted values, then swap within rank windows.
  std::vector<double> sorted(n);
  for (size_t r = 0; r < n; ++r) sorted[r] = xs[order[r]];
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(window_pct_ / 100.0 * static_cast<double>(n))));
  for (size_t r = 0; r + 1 < n; ++r) {
    const size_t hi = std::min(n - 1, r + window);
    const size_t partner = r + rng->NextBounded(hi - r + 1);
    std::swap(sorted[r], sorted[partner]);
  }
  std::vector<double> out(n);
  for (size_t r = 0; r < n; ++r) out[order[r]] = sorted[r];
  return out;
}

Status RankSwapper::SwapColumn(relational::Table* table, const std::string& column,
                               Rng* rng) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  std::vector<double> xs;
  std::vector<size_t> rows;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    const relational::Value& v = table->row(i)[col];
    if (v.is_null()) continue;
    if (!v.is_numeric()) {
      return Status::InvalidArgument("column '" + column + "' is not numeric");
    }
    xs.push_back(v.AsDouble());
    rows.push_back(i);
  }
  const std::vector<double> swapped = Swap(xs, rng);
  const bool is_int =
      table->schema().column(col).type == relational::ColumnType::kInt64;
  for (size_t j = 0; j < rows.size(); ++j) {
    table->mutable_rows()[rows[j]][col] =
        is_int ? relational::Value::Int(static_cast<int64_t>(std::llround(swapped[j])))
               : relational::Value::Real(swapped[j]);
  }
  return Status::OK();
}

std::vector<double> Microaggregator::Aggregate(const std::vector<double>& xs) const {
  const size_t n = xs.size();
  if (n == 0 || k_ <= 1) return xs;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n);
  size_t start = 0;
  while (start < n) {
    size_t end = start + k_;
    // Last group absorbs the remainder so no group is smaller than k.
    if (end > n || n - end < k_) end = n;
    double mean = 0.0;
    for (size_t r = start; r < end; ++r) mean += xs[order[r]];
    mean /= static_cast<double>(end - start);
    for (size_t r = start; r < end; ++r) out[order[r]] = mean;
    start = end;
  }
  return out;
}

Status Microaggregator::AggregateColumn(relational::Table* table,
                                        const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(std::vector<double> xs, table->NumericColumn(column));
  if (xs.size() != table->num_rows()) {
    return Status::InvalidArgument("microaggregation requires no NULLs in column");
  }
  const std::vector<double> agg = Aggregate(xs);
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  const bool is_int =
      table->schema().column(col).type == relational::ColumnType::kInt64;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    table->mutable_rows()[i][col] =
        is_int ? relational::Value::Int(static_cast<int64_t>(std::llround(agg[i])))
               : relational::Value::Real(agg[i]);
  }
  return Status::OK();
}

double Microaggregator::SumOfSquaredErrors(const std::vector<double>& original,
                                           const std::vector<double>& released) {
  double sse = 0.0;
  for (size_t i = 0; i < original.size() && i < released.size(); ++i) {
    const double d = original[i] - released[i];
    sse += d * d;
  }
  return sse;
}

}  // namespace perturb
}  // namespace piye

#include "perturb/spectral_filter.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace piye {
namespace perturb {

Result<EigenDecomposition> JacobiEigen(const std::vector<std::vector<double>>& sym,
                                       size_t max_sweeps) {
  const size_t n = sym.size();
  for (const auto& row : sym) {
    if (row.size() != n) return Status::InvalidArgument("matrix not square");
  }
  std::vector<std::vector<double>> a = sym;
  // v starts as identity; columns become eigenvectors.
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-20) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p], vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  // Extract and sort by eigenvalue (descending).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&a](size_t x, size_t y) { return a[x][x] > a[y][y]; });
  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors.assign(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    out.eigenvalues[i] = a[order[i]][order[i]];
    for (size_t k = 0; k < n; ++k) out.eigenvectors[i][k] = v[k][order[i]];
  }
  return out;
}

Result<std::vector<std::vector<double>>> SpectralFilter::Filter(
    const std::vector<std::vector<double>>& perturbed) const {
  const size_t n = perturbed.size();
  if (n == 0) return Status::InvalidArgument("no records");
  const size_t d = perturbed[0].size();
  for (const auto& row : perturbed) {
    if (row.size() != d) return Status::InvalidArgument("ragged record matrix");
  }
  // Column means.
  std::vector<double> mean(d, 0.0);
  for (const auto& row : perturbed) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  // Covariance of the perturbed data.
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& row : perturbed) {
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i; j < d; ++j) {
        cov[i][j] += (row[i] - mean[i]) * (row[j] - mean[j]);
      }
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov[i][j] /= static_cast<double>(n - 1);
      cov[j][i] = cov[i][j];
    }
  }
  PIYE_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigen(cov));
  // Keep eigenvectors whose eigenvalue clears the noise floor.
  std::vector<const std::vector<double>*> kept;
  for (size_t i = 0; i < eig.eigenvalues.size(); ++i) {
    if (eig.eigenvalues[i] > 2.0 * noise_variance_) kept.push_back(&eig.eigenvectors[i]);
  }
  if (kept.empty() && !eig.eigenvectors.empty()) {
    kept.push_back(&eig.eigenvectors[0]);  // always keep the top component
  }
  // Project centered records onto the kept subspace, then un-center.
  std::vector<std::vector<double>> out(n, std::vector<double>(d, 0.0));
  for (size_t r = 0; r < n; ++r) {
    for (const auto* vec : kept) {
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += (perturbed[r][j] - mean[j]) * (*vec)[j];
      for (size_t j = 0; j < d; ++j) out[r][j] += dot * (*vec)[j];
    }
    for (size_t j = 0; j < d; ++j) out[r][j] += mean[j];
  }
  return out;
}

double SpectralFilter::MatrixRmse(const std::vector<std::vector<double>>& a,
                                  const std::vector<std::vector<double>>& b) {
  double acc = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    for (size_t j = 0; j < a[i].size() && j < b[i].size(); ++j) {
      const double diff = a[i][j] - b[i][j];
      acc += diff * diff;
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::sqrt(acc / static_cast<double>(count));
}

}  // namespace perturb
}  // namespace piye

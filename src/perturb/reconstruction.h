#ifndef PIYE_PERTURB_RECONSTRUCTION_H_
#define PIYE_PERTURB_RECONSTRUCTION_H_

#include <vector>

#include "common/result.h"
#include "perturb/noise.h"

namespace piye {
namespace perturb {

/// Agrawal–Srikant distribution reconstruction (SIGMOD 2000): given values
/// perturbed with a known additive-noise distribution, recover the
/// *distribution* of the originals by iterated Bayes over a histogram.
///
/// This is both the utility story of input perturbation (the miner gets the
/// distribution back) and, from the privacy side, a reminder that published
/// perturbed data still carries distributional information.
class DistributionReconstructor {
 public:
  /// Reconstructs over `bins` equi-width buckets spanning [lo, hi].
  DistributionReconstructor(double lo, double hi, size_t bins)
      : lo_(lo), hi_(hi), bins_(bins) {}

  /// Runs iterated Bayes until the L1 change drops below `tol` (or
  /// `max_iters`). Returns bucket probabilities summing to 1.
  Result<std::vector<double>> Reconstruct(const std::vector<double>& perturbed,
                                          const AdditiveNoise& noise,
                                          size_t max_iters = 500,
                                          double tol = 1e-6) const;

  /// Converts a sample to bucket probabilities over the same grid (ground
  /// truth / naive baseline).
  std::vector<double> Bucketize(const std::vector<double>& xs) const;

  /// L1 distance between two probability vectors.
  static double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

  double bucket_center(size_t i) const {
    return lo_ + (static_cast<double>(i) + 0.5) * (hi_ - lo_) / static_cast<double>(bins_);
  }

 private:
  double lo_;
  double hi_;
  size_t bins_;
};

}  // namespace perturb
}  // namespace piye

#endif  // PIYE_PERTURB_RECONSTRUCTION_H_

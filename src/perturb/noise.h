#ifndef PIYE_PERTURB_NOISE_H_
#define PIYE_PERTURB_NOISE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/table.h"

namespace piye {
namespace perturb {

/// Input perturbation in the Agrawal–Srikant style: each value of a numeric
/// column is released as x + r where r is drawn from a known noise
/// distribution. Individual values are distorted; the *distribution* remains
/// recoverable (see reconstruction.h).
class AdditiveNoise {
 public:
  enum class Distribution { kGaussian, kUniform };

  /// For kGaussian, `scale` is the standard deviation; for kUniform, noise
  /// is drawn from [-scale, scale].
  AdditiveNoise(Distribution dist, double scale) : dist_(dist), scale_(scale) {}

  Distribution distribution() const { return dist_; }
  double scale() const { return scale_; }

  /// Perturbs a vector of values.
  std::vector<double> Perturb(const std::vector<double>& xs, Rng* rng) const;

  /// Perturbs a numeric column of a table in place.
  Status PerturbColumn(relational::Table* table, const std::string& column,
                       Rng* rng) const;

  /// Density of the noise distribution at `r` (needed by reconstruction).
  double NoiseDensity(double r) const;

 private:
  Distribution dist_;
  double scale_;
};

/// Output perturbation: distorts a *query answer* instead of the stored
/// data. `LaplaceNoise` adds Laplace(sensitivity/epsilon) noise — the
/// mechanism differential privacy later standardized; `Round` coarsens to a
/// fixed precision (the defense the fig1 benchmark sweeps: publishing
/// aggregates at coarser precision widens the attacker's inferred
/// intervals).
class OutputPerturbation {
 public:
  /// Laplace mechanism with the given scale b (noise ~ Lap(0, b)).
  static double LaplaceNoise(double value, double scale, Rng* rng);

  /// Rounds to the nearest multiple of `precision` (e.g. 0.1 → one decimal).
  static double Round(double value, double precision);
};

}  // namespace perturb
}  // namespace piye

#endif  // PIYE_PERTURB_NOISE_H_

#ifndef PIYE_PERTURB_RANDOMIZED_RESPONSE_H_
#define PIYE_PERTURB_RANDOMIZED_RESPONSE_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace piye {
namespace perturb {

/// Warner's randomized response (1965), the technique Du–Zhan apply to
/// privacy-preserving mining [19]: each respondent reports their true binary
/// value with probability p and its negation with probability 1-p. No single
/// report is trustworthy, but the population proportion is recoverable:
///
///   pi_hat = (observed_rate + p - 1) / (2p - 1),  p != 1/2.
class RandomizedResponse {
 public:
  /// `truth_probability` = p above; must be in (0,1] and != 0.5.
  explicit RandomizedResponse(double truth_probability) : p_(truth_probability) {}

  double truth_probability() const { return p_; }

  /// Randomizes one response.
  bool Randomize(bool truth, Rng* rng) const {
    return rng->NextBernoulli(p_) ? truth : !truth;
  }

  /// Randomizes a population of responses.
  std::vector<bool> RandomizeAll(const std::vector<bool>& truths, Rng* rng) const;

  /// Unbiased estimate of the true proportion of `true` from randomized
  /// reports.
  Result<double> EstimateProportion(const std::vector<bool>& reports) const;

  /// Posterior probability that a respondent's true value is `true` given a
  /// `true` report and the estimated population proportion — the per-record
  /// privacy metric for the perturbation benchmark (closer to the prior ⇒
  /// more private).
  double PosteriorGivenYes(double prior_proportion) const;

 private:
  double p_;
};

/// Generalization of randomized response to k categories (the "related
/// question" design used for categorical attributes): keep the true category
/// with probability p, otherwise answer uniformly among the other k-1.
class CategoricalRandomizedResponse {
 public:
  CategoricalRandomizedResponse(size_t num_categories, double keep_probability)
      : k_(num_categories), p_(keep_probability) {}

  size_t Randomize(size_t truth, Rng* rng) const;

  /// Unbiased estimates of true category frequencies from reports.
  Result<std::vector<double>> EstimateFrequencies(
      const std::vector<size_t>& reports) const;

 private:
  size_t k_;
  double p_;
};

}  // namespace perturb
}  // namespace piye

#endif  // PIYE_PERTURB_RANDOMIZED_RESPONSE_H_

#include "perturb/noise.h"

#include <cmath>

#include "common/macros.h"

namespace piye {
namespace perturb {

std::vector<double> AdditiveNoise::Perturb(const std::vector<double>& xs,
                                           Rng* rng) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    double r = 0.0;
    switch (dist_) {
      case Distribution::kGaussian:
        r = rng->NextGaussian(0.0, scale_);
        break;
      case Distribution::kUniform:
        r = rng->NextUniform(-scale_, scale_);
        break;
    }
    out.push_back(x + r);
  }
  return out;
}

Status AdditiveNoise::PerturbColumn(relational::Table* table,
                                    const std::string& column, Rng* rng) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  if (table->schema().column(col).type != relational::ColumnType::kDouble &&
      table->schema().column(col).type != relational::ColumnType::kInt64) {
    return Status::InvalidArgument("column '" + column + "' is not numeric");
  }
  for (relational::Row& row : table->mutable_rows()) {
    if (row[col].is_null()) continue;
    double x = row[col].AsDouble();
    switch (dist_) {
      case Distribution::kGaussian:
        x += rng->NextGaussian(0.0, scale_);
        break;
      case Distribution::kUniform:
        x += rng->NextUniform(-scale_, scale_);
        break;
    }
    if (table->schema().column(col).type == relational::ColumnType::kInt64) {
      row[col] = relational::Value::Int(static_cast<int64_t>(std::llround(x)));
    } else {
      row[col] = relational::Value::Real(x);
    }
  }
  return Status::OK();
}

double AdditiveNoise::NoiseDensity(double r) const {
  switch (dist_) {
    case Distribution::kGaussian: {
      const double z = r / scale_;
      return std::exp(-0.5 * z * z) / (scale_ * std::sqrt(2.0 * M_PI));
    }
    case Distribution::kUniform:
      return std::fabs(r) <= scale_ ? 1.0 / (2.0 * scale_) : 0.0;
  }
  return 0.0;
}

double OutputPerturbation::LaplaceNoise(double value, double scale, Rng* rng) {
  return value + rng->NextLaplace(scale);
}

double OutputPerturbation::Round(double value, double precision) {
  if (precision <= 0.0) return value;
  return std::round(value / precision) * precision;
}

}  // namespace perturb
}  // namespace piye

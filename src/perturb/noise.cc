#include "perturb/noise.h"

#include <cmath>

#include "common/macros.h"

namespace piye {
namespace perturb {

std::vector<double> AdditiveNoise::Perturb(const std::vector<double>& xs,
                                           Rng* rng) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    double r = 0.0;
    switch (dist_) {
      case Distribution::kGaussian:
        r = rng->NextGaussian(0.0, scale_);
        break;
      case Distribution::kUniform:
        r = rng->NextUniform(-scale_, scale_);
        break;
    }
    out.push_back(x + r);
  }
  return out;
}

Status AdditiveNoise::PerturbColumn(relational::Table* table,
                                    const std::string& column, Rng* rng) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  const relational::ColumnType type = table->schema().column(col).type;
  if (type != relational::ColumnType::kDouble &&
      type != relational::ColumnType::kInt64) {
    return Status::InvalidArgument("column '" + column + "' is not numeric");
  }
  // Tight loop over the contiguous typed buffer; one RNG draw per non-NULL
  // row, in row order (the draw sequence is part of the kernel's contract —
  // the row-engine reference replays it with a shared seed).
  const bool gaussian = dist_ == Distribution::kGaussian;
  relational::ColumnVector* mc = table->MutableColumn(col);
  const size_t n = table->num_rows();
  if (type == relational::ColumnType::kInt64) {
    int64_t* vals = mc->mutable_ints();
    for (size_t i = 0; i < n; ++i) {
      if (mc->IsNull(i)) continue;
      const double r = gaussian ? rng->NextGaussian(0.0, scale_)
                                : rng->NextUniform(-scale_, scale_);
      vals[i] = static_cast<int64_t>(
          std::llround(static_cast<double>(vals[i]) + r));
    }
  } else {
    double* vals = mc->mutable_reals();
    for (size_t i = 0; i < n; ++i) {
      if (mc->IsNull(i)) continue;
      vals[i] += gaussian ? rng->NextGaussian(0.0, scale_)
                          : rng->NextUniform(-scale_, scale_);
    }
  }
  return Status::OK();
}

double AdditiveNoise::NoiseDensity(double r) const {
  switch (dist_) {
    case Distribution::kGaussian: {
      const double z = r / scale_;
      return std::exp(-0.5 * z * z) / (scale_ * std::sqrt(2.0 * M_PI));
    }
    case Distribution::kUniform:
      return std::fabs(r) <= scale_ ? 1.0 / (2.0 * scale_) : 0.0;
  }
  return 0.0;
}

double OutputPerturbation::LaplaceNoise(double value, double scale, Rng* rng) {
  return value + rng->NextLaplace(scale);
}

double OutputPerturbation::Round(double value, double precision) {
  if (precision <= 0.0) return value;
  return std::round(value / precision) * precision;
}

}  // namespace perturb
}  // namespace piye

#ifndef PIYE_CORE_PRIVATE_IYE_H_
#define PIYE_CORE_PRIVATE_IYE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mediator/engine.h"
#include "source/remote_source.h"

namespace piye {
namespace core {

/// PRIVATE-IYE: the top-level system facade. Owns the remote sources and
/// the mediation engine and exposes the end-to-end flow a deployment uses:
///
///   PrivateIye system;
///   auto* hmo = system.AddSource("HMO1", "compliance", table);
///   hmo->mutable_policies()->AddPolicy(...);
///   system.Initialize();
///   auto result = system.QueryXml(R"(<query ...>...</query>)");
///
/// See examples/quickstart.cc for the full walk-through.
class PrivateIye {
 public:
  explicit PrivateIye(mediator::MediationEngine::Options options);
  PrivateIye() : PrivateIye(mediator::MediationEngine::Options()) {}

  /// Creates, registers, and owns a new remote source; returns a stable
  /// pointer for policy/RBAC configuration. Returns nullptr when the engine
  /// rejects the registration (duplicate owner, or called after
  /// Initialize).
  source::RemoteSource* AddSource(const std::string& owner,
                                  const std::string& table_name,
                                  relational::Table data, uint64_t seed = 0);

  /// Registers an externally owned source. Fails with kAlreadyExists for a
  /// duplicate owner and kInvalidArgument after Initialize.
  Status AddExternalSource(source::RemoteSource* src) {
    return engine_.RegisterSource(src);
  }

  /// Generates the mediated schema. Call after all sources are added;
  /// freezes source registration.
  Status Initialize(const std::string& shared_key = "private-iye");

  /// Attaches a durability directory to the mediation engine and restores
  /// any crash-surviving state from it (see MediationEngine::Recover). Call
  /// once at startup, before the first query.
  Status Recover(const std::string& dir) { return engine_.Recover(dir); }

  /// Runs an integrated PIQL query under the given options (deadlines,
  /// retries, quorum, dedup keys — see mediator/query_options.h).
  Result<mediator::MediationEngine::IntegratedResult> Query(
      const source::PiqlQuery& query, const mediator::QueryOptions& options);

  /// Parses and runs a PIQL query from its XML text.
  Result<mediator::MediationEngine::IntegratedResult> QueryXml(
      std::string_view piql_xml, const mediator::QueryOptions& options);

  /// Back-compat forwarding overloads for the old positional-dedup call
  /// shape; new code should pass QueryOptions.
  Result<mediator::MediationEngine::IntegratedResult> Query(
      const source::PiqlQuery& query, const std::vector<std::string>& dedup_keys = {});
  Result<mediator::MediationEngine::IntegratedResult> QueryXml(
      std::string_view piql_xml, const std::vector<std::string>& dedup_keys = {});

  mediator::MediationEngine* engine() { return &engine_; }
  const match::MediatedSchema& mediated_schema() const {
    return engine_.mediated_schema();
  }

  /// The owned source registered under `owner`, or nullptr.
  source::RemoteSource* source(const std::string& owner);

 private:
  std::vector<std::unique_ptr<source::RemoteSource>> owned_sources_;
  mediator::MediationEngine engine_;
};

}  // namespace core
}  // namespace piye

#endif  // PIYE_CORE_PRIVATE_IYE_H_

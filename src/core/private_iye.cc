#include "core/private_iye.h"

#include "common/logging.h"
#include "common/macros.h"

namespace piye {
namespace core {

PrivateIye::PrivateIye(mediator::MediationEngine::Options options)
    : engine_(options) {}

source::RemoteSource* PrivateIye::AddSource(const std::string& owner,
                                            const std::string& table_name,
                                            relational::Table data, uint64_t seed) {
  auto src = std::make_unique<source::RemoteSource>(owner, table_name,
                                                    std::move(data), seed);
  const Status status = engine_.RegisterSource(src.get());
  if (!status.ok()) {
    Logger::Warn("core", "AddSource('" + owner + "') rejected: " + status.ToString());
    return nullptr;
  }
  owned_sources_.push_back(std::move(src));
  return owned_sources_.back().get();
}

Status PrivateIye::Initialize(const std::string& shared_key) {
  return engine_.GenerateMediatedSchema(shared_key);
}

Result<mediator::MediationEngine::IntegratedResult> PrivateIye::Query(
    const source::PiqlQuery& query, const mediator::QueryOptions& options) {
  return engine_.Execute(query, options);
}

Result<mediator::MediationEngine::IntegratedResult> PrivateIye::QueryXml(
    std::string_view piql_xml, const mediator::QueryOptions& options) {
  PIYE_ASSIGN_OR_RETURN(source::PiqlQuery query, source::PiqlQuery::Parse(piql_xml));
  return engine_.Execute(query, options);
}

Result<mediator::MediationEngine::IntegratedResult> PrivateIye::Query(
    const source::PiqlQuery& query, const std::vector<std::string>& dedup_keys) {
  mediator::QueryOptions options;
  options.dedup_keys = dedup_keys;
  return Query(query, options);
}

Result<mediator::MediationEngine::IntegratedResult> PrivateIye::QueryXml(
    std::string_view piql_xml, const std::vector<std::string>& dedup_keys) {
  mediator::QueryOptions options;
  options.dedup_keys = dedup_keys;
  return QueryXml(piql_xml, options);
}

source::RemoteSource* PrivateIye::source(const std::string& owner) {
  for (const auto& s : owned_sources_) {
    if (s->owner() == owner) return s.get();
  }
  return nullptr;
}

}  // namespace core
}  // namespace piye

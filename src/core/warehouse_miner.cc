#include "core/warehouse_miner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"

namespace piye {
namespace core {

namespace {

/// Transactions: one sorted item vector per row, items = "column=value".
std::vector<std::vector<std::string>> Transactions(const relational::Table& table) {
  std::vector<size_t> cat_columns;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const auto& col = table.schema().column(c);
    if (!col.name.empty() && col.name[0] == '_') continue;  // provenance etc.
    if (col.type == relational::ColumnType::kString ||
        col.type == relational::ColumnType::kBool) {
      cat_columns.push_back(c);
    }
  }
  std::vector<std::vector<std::string>> out;
  out.reserve(table.num_rows());
  for (const auto& row : table.rows()) {
    std::vector<std::string> txn;
    for (size_t c : cat_columns) {
      if (row[c].is_null()) continue;
      txn.push_back(table.schema().column(c).name + "=" + row[c].ToDisplayString());
    }
    std::sort(txn.begin(), txn.end());
    out.push_back(std::move(txn));
  }
  return out;
}

bool Contains(const std::vector<std::string>& txn,
              const std::vector<std::string>& itemset) {
  return std::includes(txn.begin(), txn.end(), itemset.begin(), itemset.end());
}

}  // namespace

Result<std::vector<WarehouseMiner::Itemset>> WarehouseMiner::FrequentItemsets(
    const relational::Table& table, double min_support, size_t max_size) {
  if (min_support <= 0.0 || min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  const auto txns = Transactions(table);
  if (txns.empty()) return std::vector<Itemset>{};
  const double n = static_cast<double>(txns.size());
  const size_t min_count = static_cast<size_t>(std::ceil(min_support * n));

  // Level 1: frequent single items.
  std::map<std::string, size_t> counts;
  for (const auto& txn : txns) {
    for (const auto& item : txn) ++counts[item];
  }
  std::vector<std::vector<std::string>> frontier;
  std::vector<Itemset> result;
  for (const auto& [item, count] : counts) {
    if (count < min_count) continue;
    frontier.push_back({item});
    result.push_back({{item}, count, static_cast<double>(count) / n});
  }
  // Levels 2..max_size: join frontier sets sharing a (k-1)-prefix, then
  // count (classic Apriori candidate generation; the anti-monotone prune is
  // implicit in joining only frequent sets).
  for (size_t size = 2; size <= max_size && frontier.size() > 1; ++size) {
    std::set<std::vector<std::string>> candidates;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        const auto& a = frontier[i];
        const auto& b = frontier[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) continue;
        std::vector<std::string> merged = a;
        merged.push_back(b.back());
        std::sort(merged.begin(), merged.end());
        // Items from the same column cannot co-occur.
        bool same_column = false;
        for (size_t x = 0; x + 1 < merged.size(); ++x) {
          const auto col_x = merged[x].substr(0, merged[x].find('='));
          const auto col_y = merged[x + 1].substr(0, merged[x + 1].find('='));
          if (col_x == col_y) same_column = true;
        }
        if (!same_column) candidates.insert(std::move(merged));
      }
    }
    frontier.clear();
    for (const auto& candidate : candidates) {
      size_t count = 0;
      for (const auto& txn : txns) count += Contains(txn, candidate) ? 1 : 0;
      if (count < min_count) continue;
      frontier.push_back(candidate);
      result.push_back({candidate, count, static_cast<double>(count) / n});
    }
  }
  std::sort(result.begin(), result.end(), [](const Itemset& a, const Itemset& b) {
    if (a.support != b.support) return a.support > b.support;
    if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
    return a.items < b.items;
  });
  return result;
}

Result<std::vector<WarehouseMiner::Rule>> WarehouseMiner::AssociationRules(
    const relational::Table& table, double min_support, double min_confidence,
    size_t max_size) {
  PIYE_ASSIGN_OR_RETURN(std::vector<Itemset> frequent,
                        FrequentItemsets(table, min_support, max_size));
  std::map<std::vector<std::string>, double> support;
  for (const auto& is : frequent) support[is.items] = is.support;

  std::vector<Rule> rules;
  for (const auto& is : frequent) {
    if (is.items.size() < 2) continue;
    // One-item consequents (the standard restriction).
    for (size_t r = 0; r < is.items.size(); ++r) {
      std::vector<std::string> lhs;
      for (size_t i = 0; i < is.items.size(); ++i) {
        if (i != r) lhs.push_back(is.items[i]);
      }
      auto lhs_support = support.find(lhs);
      auto rhs_support = support.find({is.items[r]});
      if (lhs_support == support.end() || rhs_support == support.end()) continue;
      const double confidence = is.support / lhs_support->second;
      if (confidence < min_confidence) continue;
      Rule rule;
      rule.lhs = lhs;
      rule.rhs = is.items[r];
      rule.support = is.support;
      rule.confidence = confidence;
      rule.lift = confidence / rhs_support->second;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.lift != b.lift) return a.lift > b.lift;
    return a.support > b.support;
  });
  return rules;
}

Result<std::map<std::string, double>> WarehouseMiner::TrendSlopes(
    const relational::Table& table, const std::string& group_column,
    const std::string& time_column, const std::string& value_column) {
  PIYE_ASSIGN_OR_RETURN(size_t group_idx, table.schema().IndexOf(group_column));
  PIYE_ASSIGN_OR_RETURN(size_t time_idx, table.schema().IndexOf(time_column));
  PIYE_ASSIGN_OR_RETURN(size_t value_idx, table.schema().IndexOf(value_column));
  std::map<std::string, std::vector<std::pair<double, double>>> series;
  for (const auto& row : table.rows()) {
    if (row[time_idx].is_null() || row[value_idx].is_null()) continue;
    if (!row[time_idx].is_numeric() || !row[value_idx].is_numeric()) {
      return Status::InvalidArgument("trend columns must be numeric");
    }
    series[row[group_idx].ToDisplayString()].emplace_back(
        row[time_idx].AsDouble(), row[value_idx].AsDouble());
  }
  std::map<std::string, double> out;
  for (const auto& [group, points] : series) {
    if (points.size() < 2) {
      out[group] = 0.0;
      continue;
    }
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& [x, y] : points) {
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double n = static_cast<double>(points.size());
    const double denominator = n * sxx - sx * sx;
    out[group] = denominator == 0.0 ? 0.0 : (n * sxy - sx * sy) / denominator;
  }
  return out;
}

}  // namespace core
}  // namespace piye

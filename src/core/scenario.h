#ifndef PIYE_CORE_SCENARIO_H_
#define PIYE_CORE_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "inference/snooping_attack.h"
#include "relational/table.h"
#include "source/remote_source.h"

namespace piye {
namespace core {

/// Synthetic data for the paper's two motivating scenarios. The paper's
/// original data (PHC4 2001 diabetes reports; international SARS case data)
/// is not redistributable, so these generators produce deterministic
/// stand-ins that preserve exactly the properties the experiments consume —
/// Figure 1's published aggregates, overlapping patient populations across
/// heterogeneous schemas, and an outbreak's case-count ramp (see DESIGN.md,
/// "Substitutions").
class ClinicalScenario {
 public:
  /// Ground-truth compliance rates per (measure, party) consistent with the
  /// Figure 1 aggregates, with HMO1's own values fixed to the paper's. The
  /// free cells are solved for with the in-tree NLP machinery from a fixed
  /// seed, so they are deterministic.
  static Result<std::vector<std::vector<double>>> GroundTruthRates(uint64_t seed = 7);

  /// The per-HMO "compliance" table: one row per measure with columns
  /// (test STRING, rate DOUBLE, year INT64).
  static Result<relational::Table> HmoComplianceTable(
      size_t party_index, const std::vector<std::vector<double>>& rates);

  /// A fully configured HMO source: compliance table + a policy that allows
  /// `rate` only in aggregate form for healthcare purposes, and `test`
  /// exactly; RBAC grants SELECT to the "analyst" requester.
  static Result<std::unique_ptr<source::RemoteSource>> MakeHmoSource(
      size_t party_index, const std::vector<std::vector<double>>& rates,
      uint64_t seed = 0);

  /// Patient-level sources with heterogeneous schemas and overlapping
  /// populations (hospital / pharmacy / laboratory), for the integration
  /// and dedup demos. `overlap` in [0,1] controls shared patients.
  struct PatientSources {
    relational::Table hospital;  ///< patient_id,name,dob,zip,sex,diagnosis
    relational::Table pharmacy;  ///< pid,patientName,dateOfBirth,drug
    relational::Table lab;       ///< patient,birthdate,test,result
  };
  static PatientSources MakePatientTables(size_t patients_per_source, double overlap,
                                          uint64_t seed);

  /// Applies the standard clinical policies to a patient-level source:
  /// names denied, dob range-only, zip generalized, diagnosis exact for
  /// healthcare purposes only.
  static void ApplyPatientPolicies(source::RemoteSource* src);
};

/// Example 2: disease-outbreak surveillance over per-country case streams.
class OutbreakScenario {
 public:
  /// Per-country daily case counts: baseline Poisson noise plus an
  /// exponential ramp starting at `outbreak_day` in `outbreak_country`.
  /// Columns: day INT64, region STRING, cases INT64.
  static std::vector<relational::Table> MakeCaseTables(
      const std::vector<std::string>& countries, size_t days, size_t outbreak_day,
      size_t outbreak_country, uint64_t seed);

  /// Simple surveillance detector: first day the `window`-day moving sum
  /// exceeds `threshold_factor` times the trailing baseline. Returns the
  /// detection day or -1.
  static long DetectOutbreak(const std::vector<double>& daily_cases, size_t window,
                             double threshold_factor);
};

}  // namespace core
}  // namespace piye

#endif  // PIYE_CORE_SCENARIO_H_

#ifndef PIYE_CORE_BASELINE_H_
#define PIYE_CORE_BASELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "source/remote_source.h"

namespace piye {
namespace core {

/// The comparator the benchmarks measure PRIVATE-IYE against: a traditional
/// data-integration system with access control but *no privacy layer* — it
/// reads every source's raw table (authorized access!) and publishes exact
/// integrated aggregates. This is the world of Example 1, where the
/// published tables let the snooping HMO run its NLP inference.
class NaiveIntegrator {
 public:
  /// Union of the raw tables (schemas must match), plus a `_source` column.
  static Result<relational::Table> IntegrateAll(
      const std::vector<const source::RemoteSource*>& sources);

  /// Publishes exact per-group aggregates over the raw union — e.g. the
  /// mean/σ compliance per test across HMOs of Figure 1(a).
  struct PublishedRow {
    std::string group;
    double mean = 0.0;
    double stddev = 0.0;
    size_t count = 0;
  };
  static Result<std::vector<PublishedRow>> PublishGroupedAggregates(
      const std::vector<const source::RemoteSource*>& sources,
      const std::string& group_column, const std::string& value_column);
};

}  // namespace core
}  // namespace piye

#endif  // PIYE_CORE_BASELINE_H_

#include "core/baseline.h"

#include <cmath>
#include <map>

#include "common/macros.h"

namespace piye {
namespace core {

Result<relational::Table> NaiveIntegrator::IntegrateAll(
    const std::vector<const source::RemoteSource*>& sources) {
  if (sources.empty()) return Status::InvalidArgument("no sources");
  relational::Schema schema = sources[0]->schema();
  schema.AddColumn({"_source", relational::ColumnType::kString});
  relational::Table out(schema);
  for (const auto* src : sources) {
    if (!(src->schema() == sources[0]->schema())) {
      return Status::InvalidArgument("naive integration requires matching schemas");
    }
    for (const auto& row : src->raw_table_for_testing().rows()) {
      relational::Row r = row;
      r.push_back(relational::Value::Str(src->owner()));
      out.AppendRowUnchecked(std::move(r));
    }
  }
  return out;
}

Result<std::vector<NaiveIntegrator::PublishedRow>>
NaiveIntegrator::PublishGroupedAggregates(
    const std::vector<const source::RemoteSource*>& sources,
    const std::string& group_column, const std::string& value_column) {
  PIYE_ASSIGN_OR_RETURN(relational::Table all, IntegrateAll(sources));
  PIYE_ASSIGN_OR_RETURN(size_t group_idx, all.schema().IndexOf(group_column));
  PIYE_ASSIGN_OR_RETURN(size_t value_idx, all.schema().IndexOf(value_column));
  std::map<std::string, std::vector<double>> groups;
  std::vector<std::string> order;
  for (const auto& row : all.rows()) {
    const std::string key = row[group_idx].ToDisplayString();
    if (groups.count(key) == 0) order.push_back(key);
    if (!row[value_idx].is_null()) groups[key].push_back(row[value_idx].AsDouble());
  }
  std::vector<PublishedRow> out;
  for (const auto& key : order) {
    const auto& xs = groups[key];
    PublishedRow row;
    row.group = key;
    row.count = xs.size();
    for (double x : xs) row.mean += x;
    if (!xs.empty()) row.mean /= static_cast<double>(xs.size());
    double acc = 0.0;
    for (double x : xs) acc += (x - row.mean) * (x - row.mean);
    if (!xs.empty()) row.stddev = std::sqrt(acc / static_cast<double>(xs.size()));
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace core
}  // namespace piye

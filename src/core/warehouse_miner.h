#ifndef PIYE_CORE_WAREHOUSE_MINER_H_
#define PIYE_CORE_WAREHOUSE_MINER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace piye {
namespace core {

/// The analysis layer the paper motivates the whole system with: "gathering
/// all relevant data ... to a central repository and then run a set of
/// algorithms against this data to detect trends and patterns". The miner
/// runs over *privacy-preserved integrated results* (warehoused tables whose
/// values have already been coarsened/audited by the pipeline), so mining
/// never touches raw source data.
class WarehouseMiner {
 public:
  /// A frequent itemset over (column=value) items.
  struct Itemset {
    std::vector<std::string> items;  ///< "column=value" strings, sorted
    size_t support_count = 0;
    double support = 0.0;
  };

  /// An association rule lhs → rhs.
  struct Rule {
    std::vector<std::string> lhs;
    std::string rhs;
    double support = 0.0;
    double confidence = 0.0;
    double lift = 0.0;
  };

  /// Apriori over the categorical (STRING/BOOL) columns of `table`: every
  /// row is a transaction of column=value items. Returns all itemsets with
  /// support >= `min_support`, sizes 1..`max_size`, sorted by descending
  /// support.
  static Result<std::vector<Itemset>> FrequentItemsets(
      const relational::Table& table, double min_support, size_t max_size = 3);

  /// Association rules derived from the frequent itemsets with confidence >=
  /// `min_confidence`, sorted by descending lift.
  static Result<std::vector<Rule>> AssociationRules(const relational::Table& table,
                                                    double min_support,
                                                    double min_confidence,
                                                    size_t max_size = 3);

  /// Per-group trend slopes: least-squares slope of `value_column` over
  /// `time_column` for each distinct value of `group_column` — the outbreak
  /// scenario's "understanding and predicting the progression" primitive.
  static Result<std::map<std::string, double>> TrendSlopes(
      const relational::Table& table, const std::string& group_column,
      const std::string& time_column, const std::string& value_column);
};

}  // namespace core
}  // namespace piye

#endif  // PIYE_CORE_WAREHOUSE_MINER_H_

#include "core/scenario.h"

#include <cmath>

#include "common/macros.h"
#include "common/rng.h"
#include "common/strings.h"
#include "inference/nlp_solver.h"
#include "policy/policy.h"

namespace piye {
namespace core {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Table;
using relational::Value;

Result<std::vector<std::vector<double>>> ClinicalScenario::GroundTruthRates(
    uint64_t seed) {
  const auto published = inference::PublishedAggregates::Figure1();
  const auto attacker = inference::AttackerKnowledge::Figure1();
  PIYE_ASSIGN_OR_RETURN(inference::ConstraintSystem sys,
                        inference::SnoopingAttack::BuildSystem(published, attacker));
  inference::NlpBoundSolver solver(&sys, seed);
  PIYE_ASSIGN_OR_RETURN(std::vector<double> point, solver.FindFeasiblePoint());
  const size_t num_measures = published.measures.size();
  const size_t num_parties = published.parties.size();
  std::vector<std::vector<double>> rates(num_measures,
                                         std::vector<double>(num_parties));
  for (size_t m = 0; m < num_measures; ++m) {
    for (size_t p = 0; p < num_parties; ++p) {
      rates[m][p] = point[m * num_parties + p];
    }
  }
  return rates;
}

Result<Table> ClinicalScenario::HmoComplianceTable(
    size_t party_index, const std::vector<std::vector<double>>& rates) {
  const auto published = inference::PublishedAggregates::Figure1();
  if (party_index >= published.parties.size()) {
    return Status::OutOfRange("party index out of range");
  }
  Table table(relational::Schema{Column{"test", ColumnType::kString},
                                 Column{"rate", ColumnType::kDouble},
                                 Column{"year", ColumnType::kInt64}});
  for (size_t m = 0; m < published.measures.size(); ++m) {
    PIYE_RETURN_NOT_OK(table.AppendRow(Row{Value::Str(published.measures[m]),
                                           Value::Real(rates[m][party_index]),
                                           Value::Int(2001)}));
  }
  return table;
}

Result<std::unique_ptr<source::RemoteSource>> ClinicalScenario::MakeHmoSource(
    size_t party_index, const std::vector<std::vector<double>>& rates,
    uint64_t seed) {
  const auto published = inference::PublishedAggregates::Figure1();
  PIYE_ASSIGN_OR_RETURN(Table table, HmoComplianceTable(party_index, rates));
  const std::string owner = published.parties[party_index];
  auto src = std::make_unique<source::RemoteSource>(owner, "compliance",
                                                    std::move(table), seed);
  // Policy: each HMO "considers its own compliance rates ... as sensitive
  // data" — rate is aggregate-only; the test name and year are public.
  policy::PrivacyPolicy policy(owner, {});
  policy::PolicyRule rate_rule;
  rate_rule.id = "rate-aggregate-only";
  rate_rule.item = {"*", "rate"};
  rate_rule.purposes = {"healthcare"};
  rate_rule.recipients = {"*"};
  rate_rule.form = policy::DisclosureForm::kAggregate;
  rate_rule.max_privacy_loss = 0.3;
  policy.AddRule(rate_rule);
  policy::PolicyRule test_rule;
  test_rule.id = "test-public";
  test_rule.item = {"*", "test"};
  test_rule.purposes = {"*"};
  test_rule.recipients = {"*"};
  test_rule.form = policy::DisclosureForm::kExact;
  policy.AddRule(test_rule);
  policy::PolicyRule year_rule;
  year_rule.id = "year-public";
  year_rule.item = {"*", "year"};
  year_rule.purposes = {"*"};
  year_rule.recipients = {"*"};
  year_rule.form = policy::DisclosureForm::kExact;
  policy.AddRule(year_rule);
  PIYE_RETURN_NOT_OK(src->mutable_policies()->AddPolicy(std::move(policy)));
  // RBAC: the analyst role may read everything this source exports.
  PIYE_RETURN_NOT_OK(src->mutable_rbac()->AddRole("analyst"));
  PIYE_RETURN_NOT_OK(src->mutable_rbac()->AssignRole("analyst", "analyst"));
  PIYE_RETURN_NOT_OK(
      src->mutable_rbac()->Grant("analyst", access::Action::kSelect, "*", "*"));
  return src;
}

namespace {

const char* kFirstNames[] = {"maria", "james", "wei",  "fatima", "ivan",
                             "chloe", "raj",   "sofia", "kenji",  "anna"};
const char* kLastNames[] = {"tan",   "smith", "garcia", "lee",  "patel",
                            "weber", "okafor", "sato",  "novak", "silva"};
const char* kDiagnoses[] = {"diabetes", "hypertension", "asthma", "sars",
                            "influenza"};
const char* kDrugs[] = {"metformin", "lisinopril", "albuterol", "ribavirin",
                        "oseltamivir"};
const char* kTests[] = {"HbA1c", "LDL", "urinalysis", "chest-xray"};

struct Patient {
  std::string id;
  std::string name;
  std::string dob;
  int64_t zip;
  std::string sex;
  std::string diagnosis;
};

Patient MakePatient(size_t index, Rng* rng) {
  Patient p;
  p.id = strings::Format("P%05zu", index);
  p.name = std::string(kFirstNames[rng->NextBounded(10)]) + " " +
           kLastNames[rng->NextBounded(10)];
  p.dob = strings::Format("19%02llu-%02llu-%02llu",
                          (unsigned long long)(30 + rng->NextBounded(60)),
                          (unsigned long long)(1 + rng->NextBounded(12)),
                          (unsigned long long)(1 + rng->NextBounded(28)));
  p.zip = static_cast<int64_t>(10000 + rng->NextBounded(89999));
  p.sex = rng->NextBernoulli(0.5) ? "F" : "M";
  p.diagnosis = kDiagnoses[rng->NextBounded(5)];
  return p;
}

}  // namespace

ClinicalScenario::PatientSources ClinicalScenario::MakePatientTables(
    size_t patients_per_source, double overlap, uint64_t seed) {
  Rng rng(seed);
  // A shared pool of patients; each source draws `patients_per_source` of
  // them, with the first `overlap` fraction common to all three.
  const size_t shared = static_cast<size_t>(overlap * patients_per_source);
  std::vector<Patient> pool;
  const size_t pool_size = shared + 3 * (patients_per_source - shared);
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) pool.push_back(MakePatient(i, &rng));

  auto draw = [&](size_t source_index) {
    std::vector<const Patient*> out;
    for (size_t i = 0; i < shared; ++i) out.push_back(&pool[i]);
    const size_t base = shared + source_index * (patients_per_source - shared);
    for (size_t i = 0; i < patients_per_source - shared; ++i) {
      out.push_back(&pool[base + i]);
    }
    return out;
  };

  PatientSources out{
      Table(relational::Schema{Column{"patient_id", ColumnType::kString},
                               Column{"name", ColumnType::kString},
                               Column{"dob", ColumnType::kString},
                               Column{"zip", ColumnType::kInt64},
                               Column{"sex", ColumnType::kString},
                               Column{"diagnosis", ColumnType::kString}}),
      Table(relational::Schema{Column{"pid", ColumnType::kString},
                               Column{"patientName", ColumnType::kString},
                               Column{"dateOfBirth", ColumnType::kString},
                               Column{"drug", ColumnType::kString}}),
      Table(relational::Schema{Column{"patient", ColumnType::kString},
                               Column{"birthdate", ColumnType::kString},
                               Column{"test", ColumnType::kString},
                               Column{"result", ColumnType::kDouble}})};
  for (const Patient* p : draw(0)) {
    out.hospital.AppendRowUnchecked(Row{Value::Str(p->id), Value::Str(p->name),
                                        Value::Str(p->dob), Value::Int(p->zip),
                                        Value::Str(p->sex),
                                        Value::Str(p->diagnosis)});
  }
  for (const Patient* p : draw(1)) {
    out.pharmacy.AppendRowUnchecked(Row{Value::Str(p->id), Value::Str(p->name),
                                        Value::Str(p->dob),
                                        Value::Str(kDrugs[rng.NextBounded(5)])});
  }
  for (const Patient* p : draw(2)) {
    out.lab.AppendRowUnchecked(Row{Value::Str(p->id), Value::Str(p->dob),
                                   Value::Str(kTests[rng.NextBounded(4)]),
                                   Value::Real(rng.NextUniform(3.0, 12.0))});
  }
  return out;
}

void ClinicalScenario::ApplyPatientPolicies(source::RemoteSource* src) {
  policy::PrivacyPolicy policy(src->owner(), {});
  auto add = [&policy](const std::string& column, policy::DisclosureForm form,
                       const std::string& purpose, double budget) {
    policy::PolicyRule rule;
    rule.id = column + "-rule";
    rule.item = {"*", column};
    rule.purposes = {purpose};
    rule.recipients = {"*"};
    rule.form = form;
    rule.max_privacy_loss = budget;
    policy.AddRule(rule);
  };
  for (const auto& col : src->schema().columns()) {
    const std::string lower = strings::ToLower(col.name);
    if (strings::ContainsIgnoreCase(lower, "name")) {
      continue;  // names: no rule at all ⇒ default deny
    }
    if (lower == "dob" || lower == "dateofbirth" || lower == "birthdate") {
      add(col.name, policy::DisclosureForm::kRange, "healthcare", 0.8);
    } else if (lower == "zip") {
      add(col.name, policy::DisclosureForm::kGeneralized, "healthcare", 0.7);
    } else if (lower == "diagnosis" || lower == "drug" || lower == "test") {
      add(col.name, policy::DisclosureForm::kExact, "healthcare", 0.8);
    } else {
      add(col.name, policy::DisclosureForm::kExact, "healthcare", 1.0);
    }
  }
  // Fixture wiring on a freshly built source: the only failure mode is a
  // duplicate name, which cannot occur here.
  (void)src->mutable_policies()->AddPolicy(std::move(policy));
  (void)src->mutable_rbac()->AddRole("analyst");
  (void)src->mutable_rbac()->AssignRole("analyst", "analyst");
  (void)src->mutable_rbac()->Grant("analyst", access::Action::kSelect, "*", "*");
  (void)src->mutable_rbac()->AddRole("cdc");
  (void)src->mutable_rbac()->AssignRole("cdc", "cdc");
  (void)src->mutable_rbac()->Grant("cdc", access::Action::kSelect, "*", "*");
}

std::vector<Table> OutbreakScenario::MakeCaseTables(
    const std::vector<std::string>& countries, size_t days, size_t outbreak_day,
    size_t outbreak_country, uint64_t seed) {
  Rng rng(seed);
  std::vector<Table> out;
  for (size_t c = 0; c < countries.size(); ++c) {
    Table table(relational::Schema{Column{"day", ColumnType::kInt64},
                                   Column{"region", ColumnType::kString},
                                   Column{"cases", ColumnType::kInt64}});
    for (size_t d = 0; d < days; ++d) {
      double rate = 4.0;  // endemic baseline
      if (c == outbreak_country && d >= outbreak_day) {
        rate += 2.0 * std::pow(1.35, static_cast<double>(d - outbreak_day));
      }
      const int cases = rng.NextPoisson(std::min(rate, 400.0));
      table.AppendRowUnchecked(Row{Value::Int(static_cast<int64_t>(d)),
                                   Value::Str(countries[c]),
                                   Value::Int(cases)});
    }
    out.push_back(std::move(table));
  }
  return out;
}

long OutbreakScenario::DetectOutbreak(const std::vector<double>& daily_cases,
                                      size_t window, double threshold_factor) {
  if (daily_cases.size() < 2 * window) return -1;
  for (size_t d = 2 * window; d < daily_cases.size(); ++d) {
    double recent = 0.0, baseline = 0.0;
    for (size_t i = 0; i < window; ++i) {
      recent += daily_cases[d - i];
      baseline += daily_cases[d - window - i];
    }
    if (baseline < 1.0) baseline = 1.0;
    if (recent >= threshold_factor * baseline) return static_cast<long>(d);
  }
  return -1;
}

}  // namespace core
}  // namespace piye

#include "statdb/restriction.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace statdb {

Result<double> QuerySetSizeControl::Answer(const AggregateQuery& query,
                                           const relational::Table& data) const {
  PIYE_ASSIGN_OR_RETURN(std::vector<size_t> rows, QuerySet(query, data));
  const size_t n = data.num_rows();
  if (rows.size() < k_ || rows.size() + k_ > n) {
    return Status::PrivacyViolation(strings::Format(
        "query set size %zu outside [%zu, %zu]", rows.size(), k_, n - k_));
  }
  return EvaluateAggregate(query, data, rows);
}

Result<double> OverlapControl::Answer(const AggregateQuery& query,
                                      const relational::Table& data) {
  PIYE_ASSIGN_OR_RETURN(std::vector<size_t> rows, QuerySet(query, data));
  if (rows.size() < min_size_) {
    return Status::PrivacyViolation(strings::Format(
        "query set size %zu below minimum %zu", rows.size(), min_size_));
  }
  std::vector<size_t> sorted = rows;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& prev : answered_) {
    std::vector<size_t> overlap;
    std::set_intersection(sorted.begin(), sorted.end(), prev.begin(), prev.end(),
                          std::back_inserter(overlap));
    if (overlap.size() > max_overlap_) {
      return Status::PrivacyViolation(strings::Format(
          "query set overlaps a previous query in %zu rows (max %zu)",
          overlap.size(), max_overlap_));
    }
  }
  PIYE_ASSIGN_OR_RETURN(double value, EvaluateAggregate(query, data, rows));
  answered_.push_back(std::move(sorted));
  return value;
}

}  // namespace statdb
}  // namespace piye

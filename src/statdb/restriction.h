#ifndef PIYE_STATDB_RESTRICTION_H_
#define PIYE_STATDB_RESTRICTION_H_

#include <vector>

#include "common/result.h"
#include "statdb/aggregate_query.h"

namespace piye {
namespace statdb {

/// Query-set-size control: answer only when the query set C satisfies
/// k <= |C| <= N - k (Adams–Wortman survey, Section 2 "Statistical
/// Databases"). Both bounds matter — a complement of a small set is as
/// revealing as the set itself.
class QuerySetSizeControl {
 public:
  explicit QuerySetSizeControl(size_t k) : k_(k) {}

  size_t k() const { return k_; }

  /// Answers or returns kPrivacyViolation when the size check fails.
  Result<double> Answer(const AggregateQuery& query,
                        const relational::Table& data) const;

 private:
  size_t k_;
};

/// Dobkin–Jones–Lipton overlap control: each answered query set must have
/// size >= `min_size` and pairwise overlap with every previously answered
/// query set of at most `max_overlap` rows. Under these conditions a
/// snooper needs at least 1 + (min_size - 1) / max_overlap queries to
/// compromise an individual value, giving a provable lower bound on attack
/// cost (ACM TODS 4(1), 1979).
///
/// The controller is stateful — it retains the row-id sets of answered
/// queries (the paper's "this requires tracking queries").
class OverlapControl {
 public:
  OverlapControl(size_t min_size, size_t max_overlap)
      : min_size_(min_size), max_overlap_(max_overlap) {}

  /// Answers, or kPrivacyViolation if the size/overlap conditions fail.
  /// Successful answers record the query set in the history.
  Result<double> Answer(const AggregateQuery& query, const relational::Table& data);

  size_t history_size() const { return answered_.size(); }

  /// Minimum number of queries a snooper must issue to compromise one
  /// record under this configuration (the DJL lower bound).
  size_t CompromiseLowerBound() const {
    return max_overlap_ == 0 ? SIZE_MAX : 1 + (min_size_ - 1) / max_overlap_;
  }

 private:
  size_t min_size_;
  size_t max_overlap_;
  std::vector<std::vector<size_t>> answered_;  // sorted row-id sets
};

}  // namespace statdb
}  // namespace piye

#endif  // PIYE_STATDB_RESTRICTION_H_

#include "statdb/audit.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace statdb {

std::vector<double> EchelonBasis::Reduce(std::vector<double> v) const {
  for (size_t r = 0; r < rows_.size(); ++r) {
    const size_t p = pivots_[r];
    if (std::fabs(v[p]) < kEps) continue;
    const double factor = v[p] / rows_[r][p];
    for (size_t c = 0; c < dimension_; ++c) v[c] -= factor * rows_[r][c];
  }
  return v;
}

bool EchelonBasis::InSpan(const std::vector<double>& v) const {
  const std::vector<double> residual = Reduce(v);
  for (double x : residual) {
    if (std::fabs(x) > kEps) return false;
  }
  return true;
}

bool EchelonBasis::Insert(std::vector<double> v) {
  std::vector<double> residual = Reduce(std::move(v));
  size_t pivot = dimension_;
  double best = kEps;
  for (size_t c = 0; c < dimension_; ++c) {
    if (std::fabs(residual[c]) > best) {
      best = std::fabs(residual[c]);
      pivot = c;
    }
  }
  if (pivot == dimension_) return false;  // in span
  rows_.push_back(std::move(residual));
  pivots_.push_back(pivot);
  return true;
}

Result<double> SumAuditor::Answer(const AggregateQuery& query,
                                  const relational::Table& data) {
  if (query.func != relational::AggFunc::kSum) {
    return Status::InvalidArgument("SumAuditor only audits SUM queries");
  }
  if (data.num_rows() != basis_.dimension()) {
    return Status::InvalidArgument("auditor dimension does not match table size");
  }
  PIYE_ASSIGN_OR_RETURN(std::vector<size_t> rows, QuerySet(query, data));
  std::vector<double> vec(basis_.dimension(), 0.0);
  for (size_t r : rows) vec[r] = 1.0;

  // Simulate inserting the query vector, then test whether any unit vector
  // becomes spanned.
  EchelonBasis trial = basis_;
  trial.Insert(vec);
  std::vector<double> unit(basis_.dimension(), 0.0);
  for (size_t i = 0; i < basis_.dimension(); ++i) {
    unit[i] = 1.0;
    const bool exposed = trial.InSpan(unit);
    unit[i] = 0.0;
    if (exposed) {
      ++refused_;
      return Status::PrivacyViolation(strings::Format(
          "answering would make record %zu determinable", i));
    }
  }
  basis_ = std::move(trial);
  ++answered_;
  return EvaluateAggregate(query, data, rows);
}

std::vector<size_t> SumAuditor::DeterminableRecords() const {
  std::vector<size_t> out;
  std::vector<double> unit(basis_.dimension(), 0.0);
  for (size_t i = 0; i < basis_.dimension(); ++i) {
    unit[i] = 1.0;
    if (basis_.InSpan(unit)) out.push_back(i);
    unit[i] = 0.0;
  }
  return out;
}

}  // namespace statdb
}  // namespace piye

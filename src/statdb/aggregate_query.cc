#include "statdb/aggregate_query.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace piye {
namespace statdb {

std::string AggregateQuery::Canonical() const {
  std::string out = relational::AggFuncToString(func);
  out += "(";
  out += column;
  out += ")|";
  out += predicate != nullptr ? predicate->ToString() : "TRUE";
  return out;
}

Result<std::vector<size_t>> QuerySet(const AggregateQuery& query,
                                     const relational::Table& data) {
  std::vector<size_t> rows;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (query.predicate == nullptr) {
      rows.push_back(i);
      continue;
    }
    PIYE_ASSIGN_OR_RETURN(bool keep,
                          query.predicate->EvaluatesTrue(data.row(i), data.schema()));
    if (keep) rows.push_back(i);
  }
  return rows;
}

Result<double> EvaluateAggregate(const AggregateQuery& query,
                                 const relational::Table& data,
                                 const std::vector<size_t>& rows) {
  PIYE_ASSIGN_OR_RETURN(size_t col, data.schema().IndexOf(query.column));
  double sum = 0.0, sum_sq = 0.0;
  double mn = 0.0, mx = 0.0;
  size_t count = 0;
  for (size_t r : rows) {
    const relational::Value& v = data.row(r)[col];
    if (v.is_null()) continue;
    if (!v.is_numeric()) {
      return Status::InvalidArgument("column '" + query.column + "' is not numeric");
    }
    const double x = v.AsDouble();
    if (count == 0) {
      mn = mx = x;
    } else {
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    sum += x;
    sum_sq += x * x;
    ++count;
  }
  switch (query.func) {
    case relational::AggFunc::kCount:
      return static_cast<double>(count);
    case relational::AggFunc::kSum:
      return sum;
    case relational::AggFunc::kAvg:
      if (count == 0) return Status::InvalidArgument("AVG over empty query set");
      return sum / static_cast<double>(count);
    case relational::AggFunc::kMin:
      if (count == 0) return Status::InvalidArgument("MIN over empty query set");
      return mn;
    case relational::AggFunc::kMax:
      if (count == 0) return Status::InvalidArgument("MAX over empty query set");
      return mx;
    case relational::AggFunc::kStdDev: {
      if (count == 0) return Status::InvalidArgument("STDDEV over empty query set");
      const double n = static_cast<double>(count);
      const double mean = sum / n;
      return std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
    }
  }
  return Status::Internal("unhandled aggregate");
}

}  // namespace statdb
}  // namespace piye

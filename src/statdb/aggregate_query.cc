#include "statdb/aggregate_query.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "relational/agg.h"

namespace piye {
namespace statdb {

std::string AggregateQuery::Canonical() const {
  std::string out = relational::AggFuncToString(func);
  out += "(";
  out += column;
  out += ")|";
  out += predicate != nullptr ? predicate->ToString() : "TRUE";
  return out;
}

Result<std::vector<size_t>> QuerySet(const AggregateQuery& query,
                                     const relational::Table& data) {
  std::vector<size_t> rows;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (query.predicate == nullptr) {
      rows.push_back(i);
      continue;
    }
    PIYE_ASSIGN_OR_RETURN(bool keep,
                          query.predicate->EvaluatesTrue(data.row(i), data.schema()));
    if (keep) rows.push_back(i);
  }
  return rows;
}

Result<double> EvaluateAggregate(const AggregateQuery& query,
                                 const relational::Table& data,
                                 const std::vector<size_t>& rows) {
  PIYE_ASSIGN_OR_RETURN(size_t col, data.schema().IndexOf(query.column));
  // Column-at-a-time over the typed buffer; Welford accumulation (via the
  // shared NumericAgg) keeps STDDEV stable when mean >> stddev, where the
  // old sum-of-squares formula cancelled catastrophically.
  const relational::ColumnVector& cv = data.col(col);
  const bool numeric = cv.type() == relational::ColumnType::kInt64 ||
                       cv.type() == relational::ColumnType::kDouble;
  const bool is_int = cv.type() == relational::ColumnType::kInt64;
  relational::NumericAgg agg;
  double mn = 0.0, mx = 0.0;
  for (size_t r : rows) {
    if (cv.IsNull(r)) continue;
    if (!numeric) {
      return Status::InvalidArgument("column '" + query.column + "' is not numeric");
    }
    const double x = is_int ? static_cast<double>(cv.IntAt(r)) : cv.RealAt(r);
    if (agg.count == 0) {
      mn = mx = x;
    } else {
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    agg.AddReal(x);
  }
  const size_t count = agg.count;
  switch (query.func) {
    case relational::AggFunc::kCount:
      return static_cast<double>(count);
    case relational::AggFunc::kSum:
      return agg.sum;
    case relational::AggFunc::kAvg:
      if (count == 0) return Status::InvalidArgument("AVG over empty query set");
      return agg.sum / static_cast<double>(count);
    case relational::AggFunc::kMin:
      if (count == 0) return Status::InvalidArgument("MIN over empty query set");
      return mn;
    case relational::AggFunc::kMax:
      if (count == 0) return Status::InvalidArgument("MAX over empty query set");
      return mx;
    case relational::AggFunc::kStdDev:
      if (count == 0) return Status::InvalidArgument("STDDEV over empty query set");
      return std::sqrt(agg.m2 / static_cast<double>(count));
  }
  return Status::Internal("unhandled aggregate");
}

}  // namespace statdb
}  // namespace piye

#include "statdb/sampling.h"

#include "common/macros.h"
#include "common/sha256.h"
#include "common/strings.h"

namespace piye {
namespace statdb {

RandomSampleQueries::RandomSampleQueries(std::string key_column, double sampling_rate,
                                         uint64_t seed)
    : key_column_(std::move(key_column)), rate_(sampling_rate), seed_(seed) {}

bool RandomSampleQueries::Includes(const std::string& record_key,
                                   const AggregateQuery& query) const {
  const std::string material = strings::Format("%llu|", (unsigned long long)seed_) +
                               record_key + "|" + query.Canonical();
  const uint64_t h = Sha256::Hash64(material);
  // Map the top 53 bits to [0,1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate_;
}

Result<double> RandomSampleQueries::Answer(const AggregateQuery& query,
                                           const relational::Table& data) const {
  if (rate_ <= 0.0 || rate_ > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0,1]");
  }
  PIYE_ASSIGN_OR_RETURN(size_t key_col, data.schema().IndexOf(key_column_));
  PIYE_ASSIGN_OR_RETURN(std::vector<size_t> rows, QuerySet(query, data));
  std::vector<size_t> sampled;
  for (size_t r : rows) {
    const std::string key = data.row(r)[key_col].ToDisplayString();
    if (Includes(key, query)) sampled.push_back(r);
  }
  PIYE_ASSIGN_OR_RETURN(double value, EvaluateAggregate(query, data, sampled));
  // Rescale extensive statistics so the estimate is unbiased.
  if (query.func == relational::AggFunc::kSum ||
      query.func == relational::AggFunc::kCount) {
    value /= rate_;
  }
  return value;
}

}  // namespace statdb
}  // namespace piye

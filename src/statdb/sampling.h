#ifndef PIYE_STATDB_SAMPLING_H_
#define PIYE_STATDB_SAMPLING_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "statdb/aggregate_query.h"

namespace piye {
namespace statdb {

/// Denning's random sample queries (ACM TODS 5(3), 1980): instead of the
/// exact query set, the aggregate is computed over a pseudo-random sample of
/// it. Crucially, a record's inclusion is a deterministic function of the
/// record's key *and* the query's characteristic formula, so
///  - re-issuing the same query returns the same answer (no averaging
///    attack by repetition), while
///  - logically equivalent-but-differently-phrased formulas sample
///    differently, denying small-tracker attacks exact control of the
///    query set.
class RandomSampleQueries {
 public:
  /// `key_column` identifies records stably (e.g. patient id).
  /// `sampling_rate` is the inclusion probability in (0,1].
  RandomSampleQueries(std::string key_column, double sampling_rate, uint64_t seed);

  /// Answers the aggregate over the sampled query set. COUNT and SUM are
  /// rescaled by 1/rate so answers are unbiased estimates of the true value.
  Result<double> Answer(const AggregateQuery& query,
                        const relational::Table& data) const;

  /// True if the record with the given key participates in the sample for
  /// the given query (exposed for tests).
  bool Includes(const std::string& record_key, const AggregateQuery& query) const;

  double sampling_rate() const { return rate_; }

 private:
  std::string key_column_;
  double rate_;
  uint64_t seed_;
};

}  // namespace statdb
}  // namespace piye

#endif  // PIYE_STATDB_SAMPLING_H_

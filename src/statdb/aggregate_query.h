#ifndef PIYE_STATDB_AGGREGATE_QUERY_H_
#define PIYE_STATDB_AGGREGATE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/sql.h"
#include "relational/table.h"

namespace piye {
namespace statdb {

/// A statistical query in the classical statistical-database model: an
/// aggregate over the *query set* — the rows of a protected table selected
/// by a characteristic formula.
struct AggregateQuery {
  relational::AggFunc func = relational::AggFunc::kSum;
  std::string column;              ///< aggregated column (numeric)
  relational::ExprPtr predicate;   ///< characteristic formula (null = all rows)

  /// Canonical text used for audit trails and sampling keys.
  std::string Canonical() const;
};

/// Indices of the rows selected by the query's characteristic formula.
Result<std::vector<size_t>> QuerySet(const AggregateQuery& query,
                                     const relational::Table& data);

/// Evaluates the aggregate over the given rows of `data`.
Result<double> EvaluateAggregate(const AggregateQuery& query,
                                 const relational::Table& data,
                                 const std::vector<size_t>& rows);

}  // namespace statdb
}  // namespace piye

#endif  // PIYE_STATDB_AGGREGATE_QUERY_H_

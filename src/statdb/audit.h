#ifndef PIYE_STATDB_AUDIT_H_
#define PIYE_STATDB_AUDIT_H_

#include <vector>

#include "common/result.h"
#include "statdb/aggregate_query.h"

namespace piye {
namespace statdb {

/// An incremental row-echelon basis over R^n with partial pivoting, used to
/// decide membership of a vector in the span of previously inserted vectors.
class EchelonBasis {
 public:
  explicit EchelonBasis(size_t dimension) : dimension_(dimension) {}

  size_t dimension() const { return dimension_; }
  size_t rank() const { return rows_.size(); }

  /// Reduces `v` against the basis; returns the residual.
  std::vector<double> Reduce(std::vector<double> v) const;

  /// True if `v` lies in the span of the inserted vectors.
  bool InSpan(const std::vector<double>& v) const;

  /// Inserts `v`; returns false if it was already in the span (no-op).
  bool Insert(std::vector<double> v);

 private:
  static constexpr double kEps = 1e-9;

  size_t dimension_;
  std::vector<std::vector<double>> rows_;  // echelon rows
  std::vector<size_t> pivots_;             // pivot column per row
};

/// Chin–Özsoyoğlu audit trail for SUM queries (IEEE TSE 8(6), 1982).
///
/// Each answered SUM query contributes a 0/1 row vector over the records of
/// the protected table. The auditor refuses any query whose answer would
/// make some individual record's value determinable — i.e. would put a unit
/// vector e_i into the span of answered query vectors.
class SumAuditor {
 public:
  explicit SumAuditor(size_t num_records) : basis_(num_records) {}

  /// Answers the SUM query or returns kPrivacyViolation when answering
  /// would expose an individual record exactly. Answered queries are
  /// appended to the audit trail.
  Result<double> Answer(const AggregateQuery& query, const relational::Table& data);

  /// Record indices currently determinable from the audit trail (should stay
  /// empty under the refusal policy; exposed for testing and for the
  /// sequence-audit benchmark's "no protection" baseline).
  std::vector<size_t> DeterminableRecords() const;

  size_t queries_answered() const { return answered_; }
  size_t queries_refused() const { return refused_; }

 private:
  EchelonBasis basis_;
  size_t answered_ = 0;
  size_t refused_ = 0;
};

}  // namespace statdb
}  // namespace piye

#endif  // PIYE_STATDB_AUDIT_H_

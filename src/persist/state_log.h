#ifndef PIYE_PERSIST_STATE_LOG_H_
#define PIYE_PERSIST_STATE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "persist/wal.h"

namespace piye {
namespace persist {

/// Durable state directory: one snapshot + one WAL per generation.
///
///   <dir>/snapshot-<g>   full-state blob (atomic tmp+rename, CRC-checked)
///   <dir>/wal-<g>        records appended since snapshot g
///
/// Recovery picks the highest generation with a *valid* snapshot (a corrupt
/// snapshot falls back to the previous generation — conservative, never a
/// crash), loads it, and replays only that generation's WAL; `Rotate` writes
/// the next snapshot, starts a fresh WAL, and garbage-collects everything
/// older. The crash windows are all safe:
///   - crash before the snapshot rename: the tmp file is ignored on reopen;
///   - crash after the rename, before the new WAL exists: the new
///     generation recovers from its snapshot plus an empty WAL;
///   - crash before old generations are deleted: reopen prefers the newest
///     valid generation and deletes the rest.
class StateLog {
 public:
  struct RecoveredState {
    std::string snapshot;  ///< empty when the generation has no snapshot
    std::vector<WalRecord> records;
    bool wal_clean = true;
    std::string tail_detail;
    uint64_t generation = 0;
  };

  /// Opens (creating if needed) the directory, recovers the newest valid
  /// generation into `*recovered`, and leaves the WAL open for appending —
  /// truncated back past any torn tail.
  static Result<std::unique_ptr<StateLog>> Open(const std::string& dir,
                                                RecoveredState* recovered);

  /// Buffers one record in the current generation's WAL.
  Status Append(uint16_t type, std::string_view payload) {
    return wal_->Append(type, payload);
  }

  /// Makes everything appended so far durable.
  Status Sync() { return wal_->Sync(); }

  /// Pushes appends into the file without fsync (`sync_wal = false` mode).
  Status Flush() { return wal_->Flush(); }

  /// Writes `snapshot_blob` as the next generation and starts its fresh
  /// WAL; older generations are deleted (best-effort).
  Status Rotate(std::string_view snapshot_blob);

  /// The live WAL writer — exposed so the crash-injection harness can arm
  /// kill-points on it.
  WalWriter* wal() { return wal_.get(); }

  uint64_t generation() const { return gen_; }
  const std::string& dir() const { return dir_; }

 private:
  StateLog(std::string dir, uint64_t gen, std::unique_ptr<WalWriter> wal)
      : dir_(std::move(dir)), gen_(gen), wal_(std::move(wal)) {}

  std::string dir_;
  uint64_t gen_;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_STATE_LOG_H_

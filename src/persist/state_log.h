#ifndef PIYE_PERSIST_STATE_LOG_H_
#define PIYE_PERSIST_STATE_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "persist/floor_index.h"
#include "persist/wal.h"

namespace piye {
namespace persist {

/// Crash-injection points inside `StateLog::Rotate` — one per step of the
/// compact/rotate sequence, so tests can prove that a kill at *any* instant
/// of a compaction recovers to the exact pre-compaction refusal decisions.
/// When an armed point is reached the StateLog "dies" (every subsequent
/// operation fails, simulating the process being gone) and `Rotate` returns
/// Unavailable — which the engine latches into its fail-closed refuse-all
/// state exactly like a WAL append failure.
enum class RotateKillPoint {
  kNone = 0,
  kBeforeFloors,         ///< nothing of the new generation exists yet
  kAfterFloors,          ///< floors-<g+1> renamed durable; no snapshot yet
  kAfterSnapshotTmp,     ///< snapshot tmp written + fsynced, not renamed
  kAfterSnapshotRename,  ///< generation <g+1> committed; its WAL missing
  kAfterNewWal,          ///< new WAL exists; old generations not yet GC'd
};

const char* RotateKillPointName(RotateKillPoint kp);

/// Durable state directory: one snapshot + one WAL + one floor index per
/// generation.
///
///   <dir>/snapshot-<g>   full-state blob (atomic tmp+rename, CRC-checked)
///   <dir>/wal-<g>        records appended since snapshot g
///   <dir>/floors-<g>     durable per-requester budget floors (see
///                        FloorIndex) — the spill target for cold requesters
///
/// Recovery picks the highest generation with a *valid* snapshot and floor
/// index (either being corrupt falls back to the previous generation —
/// conservative, never a crash), loads them, and replays only that
/// generation's WAL; `Rotate` folds the dirty floors into the next floor
/// index, writes the next snapshot, starts a fresh WAL, and
/// garbage-collects everything older. Rotation order is what makes every
/// crash window safe: the floor index is made durable *before* the snapshot
/// rename commits the new generation, so generation g+1 can never be chosen
/// without the floors its snapshot's spilled requesters depend on.
///   - crash before the floors or snapshot rename: orphan tmp/floors files
///     of g+1 are ignored and GC'd; recovery anchors on g, whose WAL still
///     holds every record the compaction would have dropped;
///   - crash after the snapshot rename, before the new WAL exists: g+1
///     recovers from its snapshot + floors plus an empty WAL;
///   - crash before old generations are deleted: reopen prefers the newest
///     valid generation and deletes the rest.
class StateLog {
 public:
  struct RecoveredState {
    std::string snapshot;  ///< empty when the generation has no snapshot
    std::vector<WalRecord> records;
    std::shared_ptr<const FloorIndex> floors;  ///< never null after Open
    bool wal_clean = true;
    std::string tail_detail;
    uint64_t generation = 0;
  };

  /// Opens (creating if needed) the directory, recovers the newest valid
  /// generation into `*recovered`, and leaves the WAL open for appending —
  /// truncated back past any torn tail.
  static Result<std::unique_ptr<StateLog>> Open(const std::string& dir,
                                                RecoveredState* recovered);

  /// Buffers one record in the current generation's WAL.
  Status Append(uint16_t type, std::string_view payload) {
    if (dead_) return Status::Unavailable("state log crashed (injected kill)");
    return wal_->Append(type, payload);
  }

  /// Makes everything appended so far durable.
  Status Sync() {
    if (dead_) return Status::Unavailable("state log crashed (injected kill)");
    return wal_->Sync();
  }

  /// Pushes appends into the file without fsync (`sync_wal = false` mode).
  Status Flush() {
    if (dead_) return Status::Unavailable("state log crashed (injected kill)");
    return wal_->Flush();
  }

  /// Compacts: folds `dirty_floors` into the next generation's floor index,
  /// writes `snapshot_blob` as the next snapshot, and starts its fresh WAL;
  /// older generations — including every WAL record now folded into the
  /// snapshot and floors — are deleted (best-effort). Call sites outside the
  /// engine's background snapshotter path are flagged by piye_lint
  /// (manual-snapshot).
  Status Rotate(std::string_view snapshot_blob,
                const std::map<std::string, double>& dirty_floors = {});

  /// The floor index of the current generation (never null; empty at gen 0).
  std::shared_ptr<const FloorIndex> floors() const { return floors_; }

  /// The live WAL writer — exposed so the crash-injection harness can arm
  /// kill-points on it.
  WalWriter* wal() { return wal_.get(); }
  const WalWriter* wal() const { return wal_.get(); }

  /// Arms a one-shot crash inside the next `Rotate` call.
  void ArmRotateKillPoint(RotateKillPoint kp) { rotate_kill_ = kp; }

  /// True once an injected rotate kill has fired; every operation fails.
  bool crashed() const { return dead_; }

  uint64_t generation() const { return gen_; }
  const std::string& dir() const { return dir_; }

 private:
  StateLog(std::string dir, uint64_t gen, std::unique_ptr<WalWriter> wal,
           std::shared_ptr<const FloorIndex> floors)
      : dir_(std::move(dir)),
        gen_(gen),
        wal_(std::move(wal)),
        floors_(std::move(floors)) {}

  Status MaybeKill(RotateKillPoint kp);

  std::string dir_;
  uint64_t gen_;
  std::unique_ptr<WalWriter> wal_;
  std::shared_ptr<const FloorIndex> floors_;
  RotateKillPoint rotate_kill_ = RotateKillPoint::kNone;
  bool dead_ = false;
};

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_STATE_LOG_H_

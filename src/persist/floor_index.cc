#include "persist/floor_index.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/macros.h"
#include "persist/codec.h"

namespace piye {
namespace persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[] = "PIYEFLR1";
constexpr size_t kMagicLen = 8;
constexpr size_t kHeaderLen = kMagicLen + 4 + 8;  // magic | u32 crc | u64 count
constexpr size_t kRecordLen = 16;                 // u64 key | f64 floor

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status PreadAll(int fd, char* buf, size_t len, uint64_t off) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, buf + done, len - done,
                        static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("floor index pread"));
    }
    if (n == 0) return Status::Internal("floor index pread: unexpected EOF");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Decodes the 16-byte record at index `i` of the body.
Status ReadRecord(int fd, uint64_t i, uint64_t* key, double* floor) {
  char buf[kRecordLen];
  PIYE_RETURN_NOT_OK(PreadAll(fd, buf, kRecordLen, kHeaderLen + i * kRecordLen));
  Decoder dec(std::string_view(buf, kRecordLen));
  *key = *dec.GetU64();
  *floor = *dec.GetDouble();
  return Status::OK();
}

}  // namespace

uint64_t FloorIndex::KeyFor(std::string_view requester) {
  // FNV-1a 64: the same placement hash family the sharded stores use.
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : requester) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::shared_ptr<const FloorIndex> FloorIndex::Empty() {
  return std::shared_ptr<const FloorIndex>(new FloorIndex(-1, 0));
}

FloorIndex::~FloorIndex() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::shared_ptr<const FloorIndex>> FloorIndex::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(Errno("floor index open '" + path + "'"));
  }
  auto fail = [fd, &path](std::string detail) -> Status {
    ::close(fd);
    return Status::ParseError("floor index '" + path + "': " + detail);
  };

  char header[kHeaderLen];
  Status st = PreadAll(fd, header, kHeaderLen, 0);
  if (!st.ok()) return fail("truncated header (" + st.message() + ")");
  if (std::memcmp(header, kMagic, kMagicLen) != 0) return fail("bad magic");
  Decoder head(std::string_view(header + kMagicLen, kHeaderLen - kMagicLen));
  const uint32_t crc = *head.GetU32();
  const uint64_t count = *head.GetU64();

  std::error_code ec;
  const uint64_t file_size = fs::file_size(path, ec);
  if (ec || file_size != kHeaderLen + count * kRecordLen) {
    return fail("length mismatch");
  }

  // Validate the checksum with one streaming pass. The body is read into a
  // transient buffer only here — the steady-state index keeps just the fd.
  std::string body;
  body.resize(count * kRecordLen);
  if (!body.empty()) {
    st = PreadAll(fd, body.data(), body.size(), kHeaderLen);
    if (!st.ok()) return fail(st.message());
  }
  if (Crc32(body) != crc) return fail("checksum mismatch");
  // Order check: a disordered body would silently break the binary search,
  // so it is corruption like any other.
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Decoder rec(std::string_view(body).substr(i * kRecordLen, 8));
    const uint64_t key = *rec.GetU64();
    if (i > 0 && key <= prev_key) return fail("keys not sorted");
    prev_key = key;
  }

  return std::shared_ptr<const FloorIndex>(new FloorIndex(fd, count));
}

Result<std::optional<double>> FloorIndex::Lookup(uint64_t key) const {
  if (fd_ < 0 || count_ == 0) return std::optional<double>();
  uint64_t lo = 0;
  uint64_t hi = count_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    uint64_t mid_key = 0;
    double floor = 0.0;
    PIYE_RETURN_NOT_OK(ReadRecord(fd_, mid, &mid_key, &floor));
    if (mid_key == key) return std::optional<double>(floor);
    if (mid_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::optional<double>();
}

Status FloorIndex::ScanAll(
    const std::function<void(uint64_t, double)>& fn) const {
  if (fd_ < 0) return Status::OK();
  constexpr uint64_t kChunkRecords = 4096;
  std::string buf;
  for (uint64_t i = 0; i < count_; i += kChunkRecords) {
    const uint64_t n = std::min(kChunkRecords, count_ - i);
    buf.resize(n * kRecordLen);
    PIYE_RETURN_NOT_OK(
        PreadAll(fd_, buf.data(), buf.size(), kHeaderLen + i * kRecordLen));
    for (uint64_t j = 0; j < n; ++j) {
      Decoder dec(std::string_view(buf).substr(j * kRecordLen, kRecordLen));
      const uint64_t key = *dec.GetU64();
      const double floor = *dec.GetDouble();
      fn(key, floor);
    }
  }
  return Status::OK();
}

Status FloorIndex::WriteMerged(const FloorIndex* prior,
                               std::vector<std::pair<uint64_t, double>> dirty,
                               const std::string& out_path) {
  // Collapse duplicate dirty keys to their max, then sort for the merge.
  std::sort(dirty.begin(), dirty.end());
  std::vector<std::pair<uint64_t, double>> merged_dirty;
  merged_dirty.reserve(dirty.size());
  for (const auto& [key, floor] : dirty) {
    if (!merged_dirty.empty() && merged_dirty.back().first == key) {
      merged_dirty.back().second = std::max(merged_dirty.back().second, floor);
    } else {
      merged_dirty.emplace_back(key, floor);
    }
  }

  // Merge-stream prior ∪ dirty into the body, max on equal keys. The prior
  // index is already sorted, so this is a single linear pass.
  Encoder body;
  size_t di = 0;
  auto emit = [&body](uint64_t key, double floor) {
    body.PutU64(key);
    body.PutDouble(floor);
  };
  uint64_t emitted = 0;
  Status scan = Status::OK();
  if (prior != nullptr) {
    scan = prior->ScanAll([&](uint64_t key, double floor) {
      while (di < merged_dirty.size() && merged_dirty[di].first < key) {
        emit(merged_dirty[di].first, merged_dirty[di].second);
        ++emitted;
        ++di;
      }
      if (di < merged_dirty.size() && merged_dirty[di].first == key) {
        floor = std::max(floor, merged_dirty[di].second);
        ++di;
      }
      emit(key, floor);
      ++emitted;
    });
  }
  PIYE_RETURN_NOT_OK(scan);
  for (; di < merged_dirty.size(); ++di) {
    emit(merged_dirty[di].first, merged_dirty[di].second);
    ++emitted;
  }

  Encoder head;
  head.PutU32(Crc32(body.bytes()));
  head.PutU64(emitted);
  std::string bytes = std::string(kMagic, kMagicLen) + head.Take() + body.Take();

  // Same atomic-publish discipline as snapshots: tmp, fsync, rename,
  // best-effort directory fsync.
  const std::string tmp = out_path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("floor index create '" + tmp + "'"));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("floor index write '" + tmp + "'"));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal(Errno("floor index fsync '" + tmp + "'"));
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, out_path, ec);
  if (ec) {
    return Status::Internal("floor index rename '" + tmp + "': " + ec.message());
  }
  const std::string dir = fs::path(out_path).parent_path().string();
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Best effort, matching WriteSnapshotFile: an unfsyncable directory
    // still leaves the renamed index itself durable.
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace persist
}  // namespace piye

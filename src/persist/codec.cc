#include "persist/codec.h"

#include "common/macros.h"

#include <array>
#include <cstring>

namespace piye {
namespace persist {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Encoder::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void Encoder::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

void Encoder::PutStringVector(const std::vector<std::string>& v) {
  PutU64(v.size());
  for (const auto& s : v) PutString(s);
}

void Encoder::PutU64Vector(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t x : v) PutU64(x);
}

Status Decoder::Need(size_t n) {
  if (bytes_.size() - pos_ < n) {
    return Status::ParseError("persist decode: payload truncated (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(bytes_.size() - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  PIYE_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint16_t> Decoder::GetU16() {
  PIYE_RETURN_NOT_OK(Need(2));
  uint16_t v = static_cast<uint8_t>(bytes_[pos_]) |
               static_cast<uint16_t>(static_cast<uint8_t>(bytes_[pos_ + 1])) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  PIYE_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  PIYE_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> Decoder::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<std::string> Decoder::GetString() {
  auto len = GetU64();
  if (!len.ok()) return len.status();
  PIYE_RETURN_NOT_OK(Need(*len));
  std::string s(bytes_.substr(pos_, *len));
  pos_ += *len;
  return s;
}

Result<std::vector<std::string>> Decoder::GetStringVector() {
  auto n = GetU64();
  if (!n.ok()) return n.status();
  // Each element costs at least a length prefix, so a corrupt count larger
  // than the remaining bytes is rejected before reserving anything.
  if (*n > remaining() / 8) {
    return Status::ParseError("persist decode: string vector count exceeds payload");
  }
  std::vector<std::string> out;
  out.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto s = GetString();
    if (!s.ok()) return s.status();
    out.push_back(std::move(*s));
  }
  return out;
}

Result<std::vector<uint64_t>> Decoder::GetU64Vector() {
  auto n = GetU64();
  if (!n.ok()) return n.status();
  if (*n > remaining() / 8) {
    return Status::ParseError("persist decode: u64 vector count exceeds payload");
  }
  std::vector<uint64_t> out;
  out.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto v = GetU64();
    if (!v.ok()) return v.status();
    out.push_back(*v);
  }
  return out;
}

}  // namespace persist
}  // namespace piye

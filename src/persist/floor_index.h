#ifndef PIYE_PERSIST_FLOOR_INDEX_H_
#define PIYE_PERSIST_FLOOR_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace piye {
namespace persist {

/// Durable per-requester budget floors: one sorted, checksummed file per
/// StateLog generation (`<dir>/floors-<g>`).
///
/// The floor index is what makes cold-requester spill safe. A requester whose
/// in-memory budget state was evicted still has its cumulative privacy loss
/// recorded here, so its first returning query faults the floor back in
/// *before* any admission or budget decision — and a floor that cannot be
/// loaded refuses the query (fail closed), it never defaults to a fresh
/// budget.
///
/// File layout (all little-endian, via persist::codec):
///
///   "PIYEFLR1" | u32 crc(body) | u64 count | body
///   body = count × (u64 requester-key, f64 floor), sorted by key ascending
///
/// Requester names are mapped to fixed 8-byte keys with FNV-1a (`KeyFor`).
/// Two distinct requesters hashing to the same key share one floor slot and
/// writers keep the *max* of the colliding floors: a collision can only make
/// the system refuse earlier, never release more (fail closed, ~1e-8
/// probability at a million requesters).
///
/// An open index is immutable; `Lookup` binary-searches the file with `pread`
/// and is safe to call from any number of threads concurrently. Steady-state
/// memory is one file descriptor regardless of how many requesters the
/// mediator has ever seen — the index is read back record-by-record, not
/// loaded into a map.
class FloorIndex {
 public:
  /// Stable 8-byte key for a requester name (FNV-1a 64).
  static uint64_t KeyFor(std::string_view requester);

  /// Opens and CRC-validates `path`. The validation pass streams the whole
  /// file once (recovery-time cost proportional to index size); after it the
  /// index holds only the descriptor. A missing file is an error — callers
  /// that treat "absent" as "empty" should check existence and use `Empty`.
  static Result<std::shared_ptr<const FloorIndex>> Open(const std::string& path);

  /// An index with no entries (every lookup misses). Never touches the disk.
  static std::shared_ptr<const FloorIndex> Empty();

  /// Merges `prior` (nullable) with `dirty` floors and writes the result to
  /// `out_path` with the snapshot discipline: tmp file, fsync, rename,
  /// best-effort directory fsync. Equal keys keep the maximum floor, so a
  /// merge can only raise budgets, never lower them. `dirty` need not be
  /// sorted or deduplicated.
  static Status WriteMerged(const FloorIndex* prior,
                            std::vector<std::pair<uint64_t, double>> dirty,
                            const std::string& out_path);

  /// The durable floor for `key`, or nullopt when the requester has never
  /// been folded into this index. An I/O failure is a Status — callers must
  /// refuse on it, not treat it as a miss.
  Result<std::optional<double>> Lookup(uint64_t key) const;

  /// Streams every (key, floor) record in key order. Used by merges.
  Status ScanAll(const std::function<void(uint64_t, double)>& fn) const;

  uint64_t count() const { return count_; }

  FloorIndex(const FloorIndex&) = delete;
  FloorIndex& operator=(const FloorIndex&) = delete;
  ~FloorIndex();

 private:
  FloorIndex(int fd, uint64_t count) : fd_(fd), count_(count) {}

  int fd_;          ///< -1 for the empty index
  uint64_t count_;  ///< number of 16-byte records in the body
};

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_FLOOR_INDEX_H_

#ifndef PIYE_PERSIST_CODEC_H_
#define PIYE_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace piye {
namespace persist {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range —
/// the integrity check on every WAL frame and snapshot blob. A software
/// table implementation keeps the persistence layer self-contained, matching
/// the library's no-external-crypto rule (see common/sha256.h).
uint32_t Crc32(const void* data, size_t len);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Little-endian binary encoder for WAL payloads and snapshot blobs. All
/// persisted integers are fixed-width little-endian regardless of host
/// order, so a log written on one machine replays on another.
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern via the u64 path (doubles round-trip exactly).
  void PutDouble(double v);
  /// u64 length prefix + raw bytes.
  void PutString(std::string_view s);
  void PutStringVector(const std::vector<std::string>& v);
  void PutU64Vector(const std::vector<uint64_t>& v);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over a byte view. Every getter fails with
/// kParseError instead of reading past the end, so a corrupt (but
/// CRC-colliding) payload degrades to a recovery error, never undefined
/// behaviour. Vector/string lengths are validated against the remaining
/// bytes before any allocation, so a flipped length field cannot trigger a
/// giant allocation.
class Decoder {
 public:
  /// Non-owning view; the underlying buffer must outlive the decoder. The
  /// rvalue overload is deleted so `Decoder(enc.Take())` — a view into a
  /// destroyed temporary — fails to compile instead of dangling.
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}
  explicit Decoder(std::string&&) = delete;

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::vector<std::string>> GetStringVector();
  Result<std::vector<uint64_t>> GetU64Vector();

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_CODEC_H_

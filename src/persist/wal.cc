#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/macros.h"
#include "persist/codec.h"

namespace piye {
namespace persist {

namespace {

constexpr char kMagic[] = "PIYEWAL1";
constexpr size_t kMagicLen = 8;
constexpr size_t kFrameHeader = 10;  // u32 crc + u16 type + u32 len
/// A frame longer than this is treated as corruption, not data — it bounds
/// the allocation a flipped length field can request.
constexpr uint32_t kMaxPayload = 1u << 30;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("wal write"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Encodes one frame: crc over (type | len | payload), then the fields.
std::string EncodeFrame(uint16_t type, std::string_view payload) {
  Encoder body;
  body.PutU16(type);
  body.PutU32(static_cast<uint32_t>(payload.size()));
  std::string frame = body.Take();
  frame.append(payload.data(), payload.size());
  Encoder head;
  head.PutU32(Crc32(frame));
  return head.Take() + frame;
}

}  // namespace

const char* KillPointName(KillPoint kp) {
  switch (kp) {
    case KillPoint::kNone: return "none";
    case KillPoint::kBeforeAppend: return "crash-before-append";
    case KillPoint::kMidRecord: return "crash-mid-record";
    case KillPoint::kBeforeSync: return "crash-before-flush";
    case KillPoint::kTornFinalBlock: return "torn-final-block";
  }
  return "unknown";
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // a fresh log is a valid empty log
    return Status::Internal(Errno("wal open '" + path + "'"));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("wal read '" + path + "'"));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (bytes.size() < kMagicLen || std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    out.clean = bytes.empty();
    out.valid_bytes = 0;
    if (!out.clean) out.tail_detail = "missing or corrupt WAL magic header";
    return out;
  }
  size_t pos = kMagicLen;
  out.valid_bytes = kMagicLen;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeader) {
      out.clean = false;
      out.tail_detail = "torn frame header (" + std::to_string(bytes.size() - pos) +
                        " trailing bytes)";
      break;
    }
    Decoder head(std::string_view(bytes).substr(pos, kFrameHeader));
    const uint32_t crc = *head.GetU32();
    const uint16_t type = *head.GetU16();
    const uint32_t len = *head.GetU32();
    if (len > kMaxPayload || bytes.size() - pos - kFrameHeader < len) {
      out.clean = false;
      out.tail_detail = "torn or corrupt frame at offset " + std::to_string(pos) +
                        " (declared payload " + std::to_string(len) + " bytes)";
      break;
    }
    const std::string_view body =
        std::string_view(bytes).substr(pos + 4, kFrameHeader - 4 + len);
    if (Crc32(body) != crc) {
      out.clean = false;
      out.tail_detail = "checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    WalRecord rec;
    rec.type = type;
    rec.payload.assign(body.substr(kFrameHeader - 4));
    out.records.push_back(std::move(rec));
    pos += kFrameHeader + len;
    out.valid_bytes = pos;
  }
  return out;
}

WalWriter::WalWriter(int fd, uint64_t synced) : fd_(fd), synced_(synced) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  PIYE_ASSIGN_OR_RETURN(WalReadResult existing, ReadWal(path));
  if (!existing.clean) {
    Logger::Warn("persist", "wal '" + path + "': discarding invalid tail (" +
                                existing.tail_detail + "); recovering the " +
                                std::to_string(existing.records.size()) +
                                "-record valid prefix");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("wal open '" + path + "'"));
  }
  uint64_t synced = existing.valid_bytes;
  if (synced < kMagicLen) {
    // New file, or one whose header itself was corrupt: start it over.
    if (::ftruncate(fd, 0) != 0 ||
        !WriteAll(fd, kMagic, kMagicLen).ok() || ::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal(Errno("wal init '" + path + "'"));
    }
    synced = kMagicLen;
  } else if (::ftruncate(fd, static_cast<off_t>(synced)) != 0 ||
             ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::Internal(Errno("wal truncate '" + path + "'"));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd, synced));
}

Status WalWriter::Die(const std::string& what) {
  dead_ = true;
  return Status::Unavailable("wal writer crashed (injected " + what + ")");
}

Status WalWriter::Append(uint16_t type, std::string_view payload) {
  MutexLock lock(mu_);
  if (dead_) return Status::Unavailable("wal writer is dead (crashed earlier)");
  bool fire_now = false;
  if (kill_armed_) {
    if (kill_after_appends_ == 0) {
      if (kill_point_ == KillPoint::kBeforeAppend ||
          kill_point_ == KillPoint::kMidRecord) {
        fire_now = true;
      } else {
        kill_pending_sync_ = true;  // fires at the covering Sync
      }
      kill_armed_ = false;
    } else {
      --kill_after_appends_;
    }
  }
  if (fire_now && kill_point_ == KillPoint::kBeforeAppend) {
    return Die(KillPointName(kill_point_));
  }
  std::string frame = EncodeFrame(type, payload);
  if (fire_now) {  // kMidRecord: force a durable torn prefix, then die
    pending_.append(frame.data(), frame.size() / 2);
    // The injected crash is the point: the write/fsync outcome is what a
    // dying process would have left behind, success or not.
    (void)WriteAll(fd_, pending_.data(), pending_.size());
    (void)::fsync(fd_);
    synced_ += pending_.size();
    pending_.clear();
    return Die(KillPointName(kill_point_));
  }
  pending_ += frame;
  return Status::OK();
}

Status WalWriter::Sync() {
  MutexLock lock(mu_);
  return FlushLocked(/*do_fsync=*/true);
}

Status WalWriter::Flush() {
  MutexLock lock(mu_);
  return FlushLocked(/*do_fsync=*/false);
}

Status WalWriter::FlushLocked(bool do_fsync) {
  if (dead_) return Status::Unavailable("wal writer is dead (crashed earlier)");
  if (kill_pending_sync_) {
    kill_pending_sync_ = false;
    if (kill_point_ == KillPoint::kBeforeSync) {
      // The process dies with the buffer still in user space: the records
      // appended since the last Sync never reach the file.
      pending_.clear();
      return Die(KillPointName(kill_point_));
    }
    // kTornFinalBlock: everything is written and synced, then the tail of
    // the final block is lost.
    (void)WriteAll(fd_, pending_.data(), pending_.size());
    (void)::fsync(fd_);
    uint64_t len = synced_ + pending_.size();
    const uint64_t torn = len > 3 ? len - 3 : 0;
    // Injected torn block: best-effort truncation mimics the disk losing
    // the final sectors of a synced write.
    (void)::ftruncate(fd_, static_cast<off_t>(torn));
    (void)::fsync(fd_);
    synced_ = torn;
    pending_.clear();
    return Die(KillPointName(kill_point_));
  }
  if (pending_.empty()) return Status::OK();
  PIYE_RETURN_NOT_OK(WriteAll(fd_, pending_.data(), pending_.size()));
  // fdatasync: the record bytes and the file length are what recovery
  // needs; the inode's timestamps are not worth a second journal commit.
  if (do_fsync && ::fdatasync(fd_) != 0) {
    return Status::Internal(Errno("wal fdatasync"));
  }
  synced_ += pending_.size();
  pending_.clear();
  return Status::OK();
}

uint64_t WalWriter::synced_bytes() const {
  MutexLock lock(mu_);
  return synced_;
}

void WalWriter::ArmKillPoint(KillPoint kp, uint64_t after_appends) {
  MutexLock lock(mu_);
  kill_point_ = kp;
  kill_after_appends_ = after_appends;
  kill_armed_ = kp != KillPoint::kNone;
  kill_pending_sync_ = false;
}

bool WalWriter::crashed() const {
  MutexLock lock(mu_);
  return dead_;
}

}  // namespace persist
}  // namespace piye

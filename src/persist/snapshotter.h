#ifndef PIYE_PERSIST_SNAPSHOTTER_H_
#define PIYE_PERSIST_SNAPSHOTTER_H_

#include <chrono>
#include <cstdint>
#include <functional>
// The snapshotter is the one type besides the executor that legitimately
// owns a thread; it is joined in Stop().
// piye-lint: allow(header-hygiene) snapshotter owns its worker thread
#include <thread>

#include "common/cancel.h"
#include "common/status.h"
#include "common/sync.h"

namespace piye {
namespace persist {

/// Background incremental snapshotter: one worker thread that runs the
/// engine's compact/rotate step off the query path.
///
/// Query threads call `Trigger()` when the WAL crosses the snapshot
/// threshold — it never blocks and coalesces bursts into a single rotation.
/// Tests and operators call `TriggerAndWait()`, which returns the status of
/// a rotation that *started after* the call (so the caller's writes are
/// covered by it). The worker is rate-limited (`min_interval_ms`) so a
/// write-heavy burst cannot turn into back-to-back full-state snapshots,
/// and cancellable via CancelToken: `Stop()` requests cancel, wakes every
/// sleep, and joins.
///
/// The rotate callback runs with no snapshotter lock held — it is expected
/// to take the engine's persistence mutex itself, and callers of
/// Trigger/TriggerAndWait may hold that mutex without deadlock.
class Snapshotter {
 public:
  struct Options {
    /// Minimum milliseconds between the *starts* of two background
    /// rotations. 0 = unlimited.
    uint64_t min_interval_ms = 0;
  };

  /// The compact/rotate step. A non-OK return is counted as a failure and
  /// handed back to TriggerAndWait callers; the engine's callback latches
  /// its fail-closed state on any durability error in here.
  using RotateFn = std::function<Status()>;

  Snapshotter(Options options, RotateFn rotate);
  ~Snapshotter();  ///< stops and joins the worker

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Spawns the worker. Call once.
  void Start();

  /// Requests cancel, wakes the worker and all waiters, joins. Idempotent.
  /// An in-flight rotation finishes first (rotations are never torn by
  /// Stop — only by crash injection).
  void Stop();

  /// Requests a rotation soon; coalescing, never blocks.
  void Trigger();

  /// Requests a rotation and blocks until one that started at or after this
  /// request completes; returns its status. Returns Cancelled if the
  /// snapshotter is stopped first (or was never started).
  Status TriggerAndWait();

  struct Stats {
    uint64_t rotations = 0;      ///< completed rotation attempts
    uint64_t failures = 0;       ///< attempts that returned non-OK
    uint64_t last_duration_ms = 0;
    /// Milliseconds since the last completed rotation; ~0 when none ever ran.
    uint64_t ms_since_last_rotation = UINT64_MAX;
    bool last_ok = true;
  };
  Stats stats() const;

 private:
  void Run();

  const Options options_;
  const RotateFn rotate_;
  CancelSource cancel_;

  mutable Mutex mu_;
  CondVar cv_;
  bool started_ GUARDED_BY(mu_) = false;
  bool pending_ GUARDED_BY(mu_) = false;
  uint64_t request_seq_ GUARDED_BY(mu_) = 0;
  uint64_t satisfied_seq_ GUARDED_BY(mu_) = 0;
  uint64_t rotations_ GUARDED_BY(mu_) = 0;
  uint64_t failures_ GUARDED_BY(mu_) = 0;
  uint64_t last_duration_ms_ GUARDED_BY(mu_) = 0;
  Status last_status_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point next_allowed_ GUARDED_BY(mu_){};
  std::chrono::steady_clock::time_point last_done_ GUARDED_BY(mu_){};
  bool ever_rotated_ GUARDED_BY(mu_) = false;

  // The snapshotter owns exactly one worker, started in Start() and joined
  // in Stop() (called from the destructor).
  // piye-lint: allow(raw-thread) single worker, joined in Stop()
  std::thread thread_;
};

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_SNAPSHOTTER_H_

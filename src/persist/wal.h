#ifndef PIYE_PERSIST_WAL_H_
#define PIYE_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace piye {
namespace persist {

/// One typed record of a write-ahead log. `type` is opaque to the WAL layer;
/// the mediator's record vocabulary lives in mediator/persistence.h.
struct WalRecord {
  uint16_t type = 0;
  std::string payload;
};

/// Crash-injection kill-points for the durability layer. The harness arms a
/// kill-point on a WalWriter; when it fires, the writer simulates the
/// process dying at exactly that moment — the on-disk bytes are left in the
/// state a real crash would leave them in, and every subsequent operation on
/// the writer fails (the "process" is gone). Tests then re-open the
/// directory and prove recovery restores fail-closed state.
enum class KillPoint {
  kNone = 0,
  /// Crash before the record is even buffered: nothing reaches disk.
  kBeforeAppend,
  /// Torn write: only a prefix of the record's frame is forced to disk.
  kMidRecord,
  /// Crash after Append but before Sync: the buffered record is lost with
  /// the page cache (crash-before-flush).
  kBeforeSync,
  /// The record is written and synced, then the final disk block tears:
  /// the file loses its last few bytes.
  kTornFinalBlock,
};

const char* KillPointName(KillPoint kp);

/// Append-only checksummed record log.
///
/// File layout: an 8-byte magic header, then frames of
/// `u32 crc | u16 type | u32 payload_len | payload`, where the CRC-32 covers
/// type, length, and payload. Appends are buffered in memory until `Sync`,
/// which writes the buffer and fsyncs — callers that need fail-closed
/// durability (the mediation engine) Sync before releasing an answer.
///
/// Thread-safe; the engine serializes appends itself but the harness pokes
/// writers from test threads.
class WalWriter {
 public:
  /// Opens (creating if needed) the log for appending. An existing file with
  /// a torn or corrupt tail is truncated back to its last valid frame, so
  /// new records are never appended after garbage.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one record. Durable only after the next Sync.
  Status Append(uint16_t type, std::string_view payload);

  /// Flushes buffered records to the file and fsyncs it.
  Status Sync();

  /// Flushes buffered records to the file *without* fsync — preserves WAL
  /// ordering but leaves durability to the page cache (the engine's
  /// `sync_wal = false` latency mode).
  Status Flush();

  /// Bytes known durable (synced) so far, including the header.
  uint64_t synced_bytes() const;

  /// Arms a kill-point that fires on the `after_appends`-th subsequent
  /// Append (0 ⇒ the very next one). kBeforeSync/kTornFinalBlock fire at
  /// the Sync that would cover that Append.
  void ArmKillPoint(KillPoint kp, uint64_t after_appends = 0);

  /// True once an armed kill-point has fired; every operation fails from
  /// then on.
  bool crashed() const;

 private:
  WalWriter(int fd, uint64_t synced);

  /// Marks the writer crashed; caller holds mu_.
  Status Die(const std::string& what) REQUIRES(mu_);
  Status FlushLocked(bool do_fsync) REQUIRES(mu_);

  mutable Mutex mu_;
  int fd_;
  uint64_t synced_ GUARDED_BY(mu_);      ///< durable file length
  std::string pending_ GUARDED_BY(mu_);  ///< buffered, not yet synced frames
  bool dead_ GUARDED_BY(mu_) = false;

  KillPoint kill_point_ GUARDED_BY(mu_) = KillPoint::kNone;
  uint64_t kill_after_appends_ GUARDED_BY(mu_) = 0;
  bool kill_armed_ GUARDED_BY(mu_) = false;
  /// Armed sync-time kill reached its append.
  bool kill_pending_sync_ GUARDED_BY(mu_) = false;
};

/// Result of scanning a WAL file. The reader is torn-write tolerant by
/// design: it returns every frame up to the first truncated or
/// CRC-mismatching one and reports how the tail ended, instead of failing.
/// Only an unreadable file (I/O error) is a Status failure.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Length of the valid prefix (header + intact frames). A writer opening
  /// this file truncates it to this length.
  uint64_t valid_bytes = 0;
  /// False when trailing bytes after the valid prefix were discarded.
  bool clean = true;
  /// Human-readable account of a discarded tail, for the recovery log.
  std::string tail_detail;
};

/// Reads a WAL file. A missing file yields an empty, clean result (a fresh
/// directory is a valid empty log).
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace persist
}  // namespace piye

#endif  // PIYE_PERSIST_WAL_H_

#include "persist/snapshotter.h"

#include <utility>

namespace piye {
namespace persist {

using Clock = std::chrono::steady_clock;

Snapshotter::Snapshotter(Options options, RotateFn rotate)
    : options_(options), rotate_(std::move(rotate)) {}

Snapshotter::~Snapshotter() { Stop(); }

void Snapshotter::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  // piye-lint: allow(raw-thread) see the member declaration: joined in Stop.
  thread_ = std::thread([this] { Run(); });
}

void Snapshotter::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    cancel_.RequestCancel(Status::Cancelled("snapshotter stopped"));
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(mu_);
  started_ = false;
  // Wake TriggerAndWait callers so they observe the cancel instead of
  // waiting for a rotation that will never run.
  cv_.NotifyAll();
}

void Snapshotter::Trigger() {
  MutexLock lock(mu_);
  ++request_seq_;
  pending_ = true;
  cv_.NotifyAll();
}

Status Snapshotter::TriggerAndWait() {
  MutexLock lock(mu_);
  if (!started_ || cancel_.cancel_requested()) {
    return Status::Cancelled("snapshotter is not running");
  }
  const uint64_t my_req = ++request_seq_;
  pending_ = true;
  cv_.NotifyAll();
  while (satisfied_seq_ < my_req && !cancel_.cancel_requested()) {
    cv_.Wait(lock);
  }
  if (satisfied_seq_ < my_req) {
    return Status::Cancelled("snapshotter stopped before the rotation ran");
  }
  return last_status_;
}

Snapshotter::Stats Snapshotter::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.rotations = rotations_;
  s.failures = failures_;
  s.last_duration_ms = last_duration_ms_;
  s.last_ok = last_status_.ok();
  if (ever_rotated_) {
    s.ms_since_last_rotation = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              last_done_)
            .count());
  }
  return s;
}

void Snapshotter::Run() {
  const CancelToken cancel = cancel_.token();
  for (;;) {
    uint64_t batch = 0;
    {
      MutexLock lock(mu_);
      while (!cancel.cancelled() && !pending_) cv_.Wait(lock);
      if (cancel.cancelled()) return;
      // Rate limit: back-to-back triggers coalesce until the interval since
      // the last rotation start has elapsed. Stop() wakes this wait too.
      while (!cancel.cancelled() && Clock::now() < next_allowed_) {
        // cv_status carries no information the loop condition doesn't.
        (void)cv_.WaitUntil(lock, next_allowed_);
      }
      if (cancel.cancelled()) return;
      pending_ = false;
      batch = request_seq_;
    }

    const Clock::time_point start = Clock::now();
    // Outside the lock: the callback takes the engine's persistence mutex,
    // and query threads holding it must be able to Trigger without blocking.
    Status status = rotate_();
    const Clock::time_point end = Clock::now();

    MutexLock lock(mu_);
    ++rotations_;
    if (!status.ok()) ++failures_;
    last_status_ = std::move(status);
    last_duration_ms_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(end - start)
            .count());
    last_done_ = end;
    ever_rotated_ = true;
    next_allowed_ = start + std::chrono::milliseconds(options_.min_interval_ms);
    if (batch > satisfied_seq_) satisfied_seq_ = batch;
    cv_.NotifyAll();
  }
}

}  // namespace persist
}  // namespace piye

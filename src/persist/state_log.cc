#include "persist/state_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/macros.h"
#include "persist/codec.h"

namespace piye {
namespace persist {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapMagic[] = "PIYESNP1";
constexpr size_t kSnapMagicLen = 8;

std::string SnapshotPath(const std::string& dir, uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen);
}

std::string WalPath(const std::string& dir, uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen);
}

/// Parses "<prefix>-<gen>" names; returns false for anything else.
bool ParseGen(const std::string& name, const std::string& prefix, uint64_t* gen) {
  if (name.rfind(prefix + "-", 0) != 0) return false;
  const std::string digits = name.substr(prefix.size() + 1);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *gen = std::stoull(digits);
  return true;
}

/// Reads and validates a snapshot file: magic | u32 crc | u64 len | blob.
Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return Status::NotFound("no snapshot at " + path);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("snapshot open '" + path + "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("snapshot read '" + path + "': " + std::strerror(errno));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (bytes.size() < kSnapMagicLen + 12 ||
      std::memcmp(bytes.data(), kSnapMagic, kSnapMagicLen) != 0) {
    return Status::ParseError("snapshot '" + path + "': bad magic or truncated");
  }
  Decoder head(std::string_view(bytes).substr(kSnapMagicLen, 12));
  const uint32_t crc = *head.GetU32();
  const uint64_t len = *head.GetU64();
  const std::string_view blob = std::string_view(bytes).substr(kSnapMagicLen + 12);
  if (blob.size() != len) {
    return Status::ParseError("snapshot '" + path + "': length mismatch");
  }
  if (Crc32(blob) != crc) {
    return Status::ParseError("snapshot '" + path + "': checksum mismatch");
  }
  return std::string(blob);
}

Status WriteSnapshotFile(const std::string& path, std::string_view blob) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot create '" + tmp + "': " + std::strerror(errno));
  }
  Encoder head;
  head.PutU32(Crc32(blob));
  head.PutU64(blob.size());
  std::string bytes = std::string(kSnapMagic, kSnapMagicLen) + head.Take();
  bytes.append(blob.data(), blob.size());
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("snapshot write '" + tmp + "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("snapshot fsync '" + tmp + "': " + std::strerror(errno));
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("snapshot rename '" + tmp + "': " + ec.message());
  }
  // Make the rename itself durable.
  const std::string dir = fs::path(path).parent_path().string();
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Best effort: a directory that cannot be fsynced (some filesystems)
    // still leaves the renamed snapshot itself durable.
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

/// Removes every snapshot/wal file of a generation other than `keep`, plus
/// stray .tmp files. Best-effort: GC failure never fails recovery.
void GarbageCollect(const std::string& dir, uint64_t keep) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t gen = 0;
    const bool is_snap = ParseGen(name, "snapshot", &gen);
    const bool is_wal = !is_snap && ParseGen(name, "wal", &gen);
    const bool is_tmp = name.size() > 4 && name.rfind(".tmp") == name.size() - 4;
    if (is_tmp || ((is_snap || is_wal) && gen != keep)) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace

Result<std::unique_ptr<StateLog>> StateLog::Open(const std::string& dir,
                                                 RecoveredState* recovered) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("persist dir '" + dir + "': " + ec.message());
  }

  // Candidate generations, newest first: every snapshot or wal file names
  // one. Generation 0 (no snapshot yet) is always a candidate.
  std::vector<uint64_t> gens;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t gen = 0;
    if (ParseGen(name, "snapshot", &gen) || ParseGen(name, "wal", &gen)) {
      gens.push_back(gen);
    }
  }
  gens.push_back(0);
  std::sort(gens.rbegin(), gens.rend());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());

  RecoveredState state;
  uint64_t chosen = 0;
  for (uint64_t gen : gens) {
    std::string snapshot;
    if (gen > 0) {
      auto blob = ReadSnapshotFile(SnapshotPath(dir, gen));
      if (!blob.ok()) {
        // A generation without a readable snapshot cannot anchor recovery;
        // fall back to the previous one (fail-closed: we may lose recent
        // answers' history, never invent budget).
        Logger::Warn("persist", "generation " + std::to_string(gen) +
                                    " unusable (" + blob.status().ToString() +
                                    "); falling back");
        continue;
      }
      snapshot = std::move(*blob);
    }
    PIYE_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(WalPath(dir, gen)));
    state.snapshot = std::move(snapshot);
    state.records = std::move(wal.records);
    state.wal_clean = wal.clean;
    state.tail_detail = wal.tail_detail;
    state.generation = gen;
    chosen = gen;
    break;
  }
  if (!state.wal_clean) {
    Logger::Warn("persist", "recovery at generation " + std::to_string(chosen) +
                                " discarded a damaged WAL tail: " +
                                state.tail_detail);
  }

  GarbageCollect(dir, chosen);
  PIYE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                        WalWriter::Open(WalPath(dir, chosen)));
  if (recovered != nullptr) *recovered = std::move(state);
  return std::unique_ptr<StateLog>(new StateLog(dir, chosen, std::move(wal)));
}

Status StateLog::Rotate(std::string_view snapshot_blob) {
  const uint64_t next = gen_ + 1;
  PIYE_RETURN_NOT_OK(WriteSnapshotFile(SnapshotPath(dir_, next), snapshot_blob));
  PIYE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                        WalWriter::Open(WalPath(dir_, next)));
  wal_ = std::move(wal);
  gen_ = next;
  GarbageCollect(dir_, gen_);
  return Status::OK();
}

}  // namespace persist
}  // namespace piye

#include "persist/state_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "persist/codec.h"

namespace piye {
namespace persist {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapMagic[] = "PIYESNP1";
constexpr size_t kSnapMagicLen = 8;

std::string SnapshotPath(const std::string& dir, uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen);
}

std::string WalPath(const std::string& dir, uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen);
}

std::string FloorsPath(const std::string& dir, uint64_t gen) {
  return dir + "/floors-" + std::to_string(gen);
}

/// Parses "<prefix>-<gen>" names; returns false for anything else.
bool ParseGen(const std::string& name, const std::string& prefix, uint64_t* gen) {
  if (name.rfind(prefix + "-", 0) != 0) return false;
  const std::string digits = name.substr(prefix.size() + 1);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *gen = std::stoull(digits);
  return true;
}

/// Reads and validates a snapshot file: magic | u32 crc | u64 len | blob.
Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return Status::NotFound("no snapshot at " + path);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("snapshot open '" + path + "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("snapshot read '" + path + "': " + std::strerror(errno));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (bytes.size() < kSnapMagicLen + 12 ||
      std::memcmp(bytes.data(), kSnapMagic, kSnapMagicLen) != 0) {
    return Status::ParseError("snapshot '" + path + "': bad magic or truncated");
  }
  Decoder head(std::string_view(bytes).substr(kSnapMagicLen, 12));
  const uint32_t crc = *head.GetU32();
  const uint64_t len = *head.GetU64();
  const std::string_view blob = std::string_view(bytes).substr(kSnapMagicLen + 12);
  if (blob.size() != len) {
    return Status::ParseError("snapshot '" + path + "': length mismatch");
  }
  if (Crc32(blob) != crc) {
    return Status::ParseError("snapshot '" + path + "': checksum mismatch");
  }
  return std::string(blob);
}

/// Writes `path + ".tmp"` with the framed blob and fsyncs it. The snapshot
/// does not exist (for recovery) until `PublishSnapshotTmp` renames it.
Status WriteSnapshotTmp(const std::string& path, std::string_view blob) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot create '" + tmp + "': " + std::strerror(errno));
  }
  Encoder head;
  head.PutU32(Crc32(blob));
  head.PutU64(blob.size());
  std::string bytes = std::string(kSnapMagic, kSnapMagicLen) + head.Take();
  bytes.append(blob.data(), blob.size());
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("snapshot write '" + tmp + "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("snapshot fsync '" + tmp + "': " + std::strerror(errno));
  }
  ::close(fd);
  return Status::OK();
}

/// Atomically publishes `path + ".tmp"` as `path` and makes the rename
/// itself durable (best-effort directory fsync).
Status PublishSnapshotTmp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("snapshot rename '" + tmp + "': " + ec.message());
  }
  const std::string dir = fs::path(path).parent_path().string();
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Best effort: a directory that cannot be fsynced (some filesystems)
    // still leaves the renamed snapshot itself durable.
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

/// Removes every snapshot/wal/floors file of a generation other than `keep`,
/// plus stray .tmp files. Best-effort: GC failure never fails recovery.
void GarbageCollect(const std::string& dir, uint64_t keep) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t gen = 0;
    const bool is_snap = ParseGen(name, "snapshot", &gen);
    const bool is_wal = !is_snap && ParseGen(name, "wal", &gen);
    const bool is_floors = !is_snap && !is_wal && ParseGen(name, "floors", &gen);
    const bool is_tmp = name.size() > 4 && name.rfind(".tmp") == name.size() - 4;
    if (is_tmp || ((is_snap || is_wal || is_floors) && gen != keep)) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace

const char* RotateKillPointName(RotateKillPoint kp) {
  switch (kp) {
    case RotateKillPoint::kNone: return "none";
    case RotateKillPoint::kBeforeFloors: return "rotate-before-floors";
    case RotateKillPoint::kAfterFloors: return "rotate-after-floors";
    case RotateKillPoint::kAfterSnapshotTmp: return "rotate-after-snapshot-tmp";
    case RotateKillPoint::kAfterSnapshotRename:
      return "rotate-after-snapshot-rename";
    case RotateKillPoint::kAfterNewWal: return "rotate-after-new-wal";
  }
  return "unknown";
}

Result<std::unique_ptr<StateLog>> StateLog::Open(const std::string& dir,
                                                 RecoveredState* recovered) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("persist dir '" + dir + "': " + ec.message());
  }

  // Candidate generations, newest first: every snapshot or wal file names
  // one. Generation 0 (no snapshot yet) is always a candidate.
  std::vector<uint64_t> gens;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t gen = 0;
    if (ParseGen(name, "snapshot", &gen) || ParseGen(name, "wal", &gen)) {
      gens.push_back(gen);
    }
  }
  gens.push_back(0);
  std::sort(gens.rbegin(), gens.rend());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());

  RecoveredState state;
  uint64_t chosen = 0;
  for (uint64_t gen : gens) {
    std::string snapshot;
    std::shared_ptr<const FloorIndex> floors = FloorIndex::Empty();
    if (gen > 0) {
      auto blob = ReadSnapshotFile(SnapshotPath(dir, gen));
      if (!blob.ok()) {
        // A generation without a readable snapshot cannot anchor recovery;
        // fall back to the previous one (fail-closed: we may lose recent
        // answers' history, never invent budget).
        Logger::Warn("persist", "generation " + std::to_string(gen) +
                                    " unusable (" + blob.status().ToString() +
                                    "); falling back");
        continue;
      }
      snapshot = std::move(*blob);
      // The floor index carries spilled requesters' budgets; a generation
      // whose floors are corrupt cannot anchor recovery either (a missing
      // file is fine — generations written before floor indexes existed
      // simply had no spilled requesters).
      const std::string floors_path = FloorsPath(dir, gen);
      std::error_code exists_ec;
      if (fs::exists(floors_path, exists_ec)) {
        auto index = FloorIndex::Open(floors_path);
        if (!index.ok()) {
          Logger::Warn("persist", "generation " + std::to_string(gen) +
                                      " unusable (" +
                                      index.status().ToString() +
                                      "); falling back");
          continue;
        }
        floors = std::move(*index);
      }
    }
    PIYE_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(WalPath(dir, gen)));
    state.snapshot = std::move(snapshot);
    state.records = std::move(wal.records);
    state.floors = floors;
    state.wal_clean = wal.clean;
    state.tail_detail = wal.tail_detail;
    state.generation = gen;
    chosen = gen;
    break;
  }
  if (state.floors == nullptr) state.floors = FloorIndex::Empty();
  if (!state.wal_clean) {
    Logger::Warn("persist", "recovery at generation " + std::to_string(chosen) +
                                " discarded a damaged WAL tail: " +
                                state.tail_detail);
  }

  GarbageCollect(dir, chosen);
  PIYE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                        WalWriter::Open(WalPath(dir, chosen)));
  std::shared_ptr<const FloorIndex> floors = state.floors;
  if (recovered != nullptr) *recovered = std::move(state);
  return std::unique_ptr<StateLog>(
      new StateLog(dir, chosen, std::move(wal), std::move(floors)));
}

Status StateLog::MaybeKill(RotateKillPoint kp) {
  if (rotate_kill_ != kp) return Status::OK();
  rotate_kill_ = RotateKillPoint::kNone;
  dead_ = true;
  return Status::Unavailable("state log crashed (injected " +
                             std::string(RotateKillPointName(kp)) + ")");
}

Status StateLog::Rotate(std::string_view snapshot_blob,
                        const std::map<std::string, double>& dirty_floors) {
  if (dead_) return Status::Unavailable("state log crashed (injected kill)");
  const uint64_t next = gen_ + 1;
  PIYE_RETURN_NOT_OK(MaybeKill(RotateKillPoint::kBeforeFloors));

  // (1) Fold the dirty floors into the next generation's floor index. The
  // floors must be durable *before* the snapshot rename commits generation
  // `next`: once recovery can choose `next`, every spilled requester's
  // budget has to be findable in floors-<next>. (An orphaned floors file
  // from a crash after this step is harmless — GC removes it, and the old
  // generation's WAL still holds the records it was folding.)
  std::vector<std::pair<uint64_t, double>> dirty;
  dirty.reserve(dirty_floors.size());
  for (const auto& [requester, floor] : dirty_floors) {
    dirty.emplace_back(FloorIndex::KeyFor(requester), floor);
  }
  PIYE_RETURN_NOT_OK(FloorIndex::WriteMerged(floors_.get(), std::move(dirty),
                                             FloorsPath(dir_, next)));
  PIYE_RETURN_NOT_OK(MaybeKill(RotateKillPoint::kAfterFloors));

  // (2) Write and publish the snapshot — the rename is the commit point of
  // the compaction.
  PIYE_RETURN_NOT_OK(WriteSnapshotTmp(SnapshotPath(dir_, next), snapshot_blob));
  PIYE_RETURN_NOT_OK(MaybeKill(RotateKillPoint::kAfterSnapshotTmp));
  PIYE_RETURN_NOT_OK(PublishSnapshotTmp(SnapshotPath(dir_, next)));
  PIYE_RETURN_NOT_OK(MaybeKill(RotateKillPoint::kAfterSnapshotRename));

  // (3) Fresh WAL for the new generation, then drop everything the snapshot
  // and floor index made redundant.
  PIYE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                        WalWriter::Open(WalPath(dir_, next)));
  PIYE_RETURN_NOT_OK(MaybeKill(RotateKillPoint::kAfterNewWal));
  PIYE_ASSIGN_OR_RETURN(std::shared_ptr<const FloorIndex> floors,
                        FloorIndex::Open(FloorsPath(dir_, next)));
  wal_ = std::move(wal);
  floors_ = std::move(floors);
  gen_ = next;
  GarbageCollect(dir_, gen_);
  return Status::OK();
}

}  // namespace persist
}  // namespace piye

#ifndef PIYE_SOURCE_PRESERVATION_H_
#define PIYE_SOURCE_PRESERVATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "policy/policy.h"
#include "relational/table.h"

namespace piye {
namespace source {

/// Classes of privacy breach the Privacy Preservation module knows how to
/// counter (Section 4's "inferring possible types of privacy breaches for
/// different classes of queries").
enum class BreachClass {
  kNone = 0,
  kIdentityDisclosure,   ///< individual rows identify people
  kAttributeDisclosure,  ///< sensitive values attach to identified rows
  kAggregateInference,   ///< published aggregates narrow sensitive values (Fig. 1)
  kLinkageAttack,        ///< results joinable with external data
};

const char* BreachClassToString(BreachClass breach);

/// Concrete countermeasures the module can apply to query results.
enum class Technique {
  kNone = 0,
  kSuppression,      ///< drop undersized groups
  kGeneralization,   ///< coarsen values to ranges
  kKAnonymity,       ///< Mondrian over numeric quasi-identifiers
  kNoiseAddition,    ///< Laplace noise on aggregates
  kRounding,         ///< publish aggregates at coarser precision
  kQuerySetRestriction,  ///< refuse small query sets
};

const char* TechniqueToString(Technique technique);

/// The Privacy Preservation module of Figure 2(a): applies the selected
/// techniques to a query result so that the released table honours each
/// column's disclosure form and the policy's loss budget.
class PreservationModule {
 public:
  struct Config {
    size_t k = 3;                    ///< group size for k-anonymity/suppression
    size_t generalization_buckets = 8;  ///< buckets for range generalization
    size_t string_prefix = 3;  ///< kept prefix when generalizing strings
    double min_aggregate_precision = 0.1;   ///< rounding floor at full budget
    double laplace_scale_at_zero_budget = 5.0;  ///< noise when budget ≈ 0
    /// Answer global aggregates via Denning random-sample queries instead of
    /// the exact query set (statdb::RandomSampleQueries): deterministic per
    /// (record, formula), so re-asking gains nothing, but rephrased trackers
    /// lose exact control of the query set. Off by default.
    bool use_random_sample_queries = false;
    double sampling_rate = 0.85;  ///< inclusion probability when enabled
  };

  explicit PreservationModule(Config config) : config_(config) {}
  PreservationModule() : PreservationModule(Config()) {}

  /// Applies `techniques` to `result`. `column_forms` drives which columns
  /// are coarsened; `loss_budget` in [0,1] scales rounding/noise strength
  /// (smaller budget ⇒ stronger distortion). Aggregate (DOUBLE) columns are
  /// the targets of rounding/noise; generalization applies to kRange /
  /// kGeneralized columns.
  Result<relational::Table> Apply(
      relational::Table result,
      const std::map<std::string, policy::DisclosureForm>& column_forms,
      double loss_budget, const std::vector<Technique>& techniques, Rng* rng) const;

  /// Default technique selection from the column forms alone (used when the
  /// cluster matcher has no opinion): generalization if any range/
  /// generalized column, rounding if any aggregate under budget < 1.
  std::vector<Technique> DefaultTechniques(
      const std::map<std::string, policy::DisclosureForm>& column_forms,
      double loss_budget) const;

  const Config& config() const { return config_; }

 private:
  Status ApplyGeneralization(
      relational::Table* table,
      const std::map<std::string, policy::DisclosureForm>& column_forms) const;
  Status ApplySuppression(
      relational::Table* table,
      const std::map<std::string, policy::DisclosureForm>& column_forms) const;
  Status ApplyRounding(relational::Table* table,
                       const std::map<std::string, policy::DisclosureForm>& forms,
                       double loss_budget) const;
  Status ApplyNoise(relational::Table* table,
                    const std::map<std::string, policy::DisclosureForm>& forms,
                    double loss_budget, Rng* rng) const;

  Config config_;
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_PRESERVATION_H_

#ifndef PIYE_SOURCE_LOSS_COMPUTATION_H_
#define PIYE_SOURCE_LOSS_COMPUTATION_H_

#include <map>
#include <string>

#include "policy/policy.h"
#include "source/piql.h"

namespace piye {
namespace source {

/// The Privacy Loss Computation module of Figure 2(a): before execution, it
/// quantifies the expected privacy loss of releasing a query's results in
/// the rewritten disclosure forms, and the dual information loss the
/// requester suffers from coarsening/denial. Both are in [0,1].
struct LossEstimate {
  /// Max per-column disclosure weight: how much an adversary can learn about
  /// an individual data item from this release (1 = exact values flow out).
  double privacy_loss = 0.0;
  /// How degraded the requester's answer is relative to exact values
  /// (0 = full fidelity; 1 = nothing usable).
  double information_loss = 0.0;
};

class LossComputation {
 public:
  /// Privacy weight per form (the probabilistic "conditional loss"
  /// heuristic: exact values reveal the most, aggregates over n >= k records
  /// very little). Capped below 1 so the mediator's multiplicative loss
  /// combination stays informative — certainty-of-disclosure is reserved for
  /// provable compromises found by the inference auditor.
  static double FormWeight(policy::DisclosureForm form);

  /// Requester-side utility per form (exact = full fidelity). The
  /// complement 1 - utility is the per-column information degradation.
  static double UtilityWeight(policy::DisclosureForm form);

  /// Estimates losses from the per-column forms the rewriter granted and the
  /// columns it denied.
  static LossEstimate Estimate(
      const std::map<std::string, policy::DisclosureForm>& column_forms,
      size_t denied_columns);

  /// True if the estimate respects both the requester's stated tolerance
  /// (max information loss) and the policy's privacy budget.
  static bool Acceptable(const LossEstimate& estimate, const PiqlQuery& query,
                         double policy_loss_budget);
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_LOSS_COMPUTATION_H_

#include "source/query_cluster.h"

#include <cmath>
#include <limits>
#include <map>

namespace piye {
namespace source {

QueryFeatures QueryFeatures::Extract(const relational::SelectStatement& stmt) {
  QueryFeatures f;
  size_t num_aggs = 0, num_cols = 0;
  for (const auto& item : stmt.items) {
    if (item.kind == relational::SelectItem::Kind::kAggregate) {
      ++num_aggs;
    } else {
      ++num_cols;
    }
  }
  f.v[0] = num_aggs > 0 ? 1.0 : 0.0;
  f.v[1] = static_cast<double>(num_aggs);
  f.v[2] = stmt.where == nullptr ? 0.0 : static_cast<double>(stmt.where->NodeCount());
  f.v[3] = num_aggs == 0 ? 1.0 : 0.0;
  f.v[4] = static_cast<double>(num_cols + num_aggs);
  f.v[5] = stmt.group_by.empty() ? 0.0 : 1.0;
  f.v[6] = static_cast<double>(stmt.group_by.size());
  f.v[7] = stmt.limit.has_value() && *stmt.limit < 10 ? 1.0 : 0.0;
  return f;
}

double QueryFeatures::DistanceTo(const QueryFeatures& other) const {
  // Categorical features (aggregate?, row-level?, small-limit?) outweigh the
  // count features: an aggregate query is never in the same breach class as
  // a row-level one, however similar their predicate counts.
  static constexpr double kWeights[kDims] = {3.0, 1.0, 1.0, 3.0,
                                             1.0, 1.0, 1.0, 2.0};
  double acc = 0.0;
  for (size_t i = 0; i < kDims; ++i) {
    const double d = (v[i] - other.v[i]) * kWeights[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void ClusterStore::AddExemplar(const QueryFeatures& features, BreachClass breach,
                               std::vector<Technique> techniques) {
  exemplars_.push_back({features, breach, std::move(techniques)});
}

void ClusterStore::Train() {
  clusters_.clear();
  std::map<BreachClass, std::vector<const Exemplar*>> by_class;
  for (const auto& e : exemplars_) by_class[e.breach].push_back(&e);
  for (const auto& [breach, members] : by_class) {
    QueryCluster cluster;
    cluster.breach = breach;
    cluster.label = BreachClassToString(breach);
    cluster.support = members.size();
    for (const Exemplar* e : members) {
      for (size_t i = 0; i < QueryFeatures::kDims; ++i) {
        cluster.centroid.v[i] += e->features.v[i];
      }
    }
    for (size_t i = 0; i < QueryFeatures::kDims; ++i) {
      cluster.centroid.v[i] /= static_cast<double>(members.size());
    }
    // Techniques: union of member technique sets, first-seen order.
    for (const Exemplar* e : members) {
      for (Technique t : e->techniques) {
        bool present = false;
        for (Technique u : cluster.techniques) present = present || u == t;
        if (!present) cluster.techniques.push_back(t);
      }
    }
    clusters_.push_back(std::move(cluster));
  }
}

const QueryCluster* ClusterStore::Map(const QueryFeatures& features) const {
  // 1-NN over the exemplars decides the breach class (classes are not
  // convex in feature space — e.g. identity probes span both low- and
  // high-predicate shapes); the matching class cluster carries the
  // technique set.
  const Exemplar* nearest = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& e : exemplars_) {
    const double d = features.DistanceTo(e.features);
    if (d < best_dist) {
      best_dist = d;
      nearest = &e;
    }
  }
  if (nearest == nullptr) return nullptr;
  for (const auto& c : clusters_) {
    if (c.breach == nearest->breach) return &c;
  }
  return nullptr;
}

ClusterStore ClusterStore::Default() {
  ClusterStore store;
  auto features = [](double agg, double naggs, double preds, double rows,
                     double cols, double grouped, double groups, double lim) {
    QueryFeatures f;
    f.v = {agg, naggs, preds, rows, cols, grouped, groups, lim};
    return f;
  };
  // Row-level selections of identifying columns → identity disclosure.
  // (Unbounded result sets, moderate predicates; the decisive contrast with
  // attribute-disclosure probes is the absence of a tiny LIMIT.)
  store.AddExemplar(features(0, 0, 3, 1, 4, 0, 0, 0), BreachClass::kIdentityDisclosure,
                    {Technique::kGeneralization, Technique::kSuppression});
  store.AddExemplar(features(0, 0, 1, 1, 6, 0, 0, 0), BreachClass::kIdentityDisclosure,
                    {Technique::kGeneralization, Technique::kSuppression});
  store.AddExemplar(features(0, 0, 7, 1, 3, 0, 0, 0), BreachClass::kIdentityDisclosure,
                    {Technique::kGeneralization, Technique::kSuppression});
  // Narrow row-level probes (small limit, selective predicates) → attribute
  // disclosure.
  store.AddExemplar(features(0, 0, 7, 1, 2, 0, 0, 1), BreachClass::kAttributeDisclosure,
                    {Technique::kSuppression, Technique::kGeneralization});
  store.AddExemplar(features(0, 0, 5, 1, 1, 0, 0, 1), BreachClass::kAttributeDisclosure,
                    {Technique::kSuppression, Technique::kGeneralization});
  // Aggregates, especially grouped ones → aggregate inference (Figure 1).
  store.AddExemplar(features(1, 1, 0, 0, 1, 0, 0, 0), BreachClass::kAggregateInference,
                    {Technique::kRounding, Technique::kQuerySetRestriction});
  store.AddExemplar(features(1, 2, 2, 0, 3, 1, 1, 0), BreachClass::kAggregateInference,
                    {Technique::kRounding, Technique::kQuerySetRestriction,
                     Technique::kNoiseAddition});
  // Wide unfiltered row-level dumps → linkage attacks.
  store.AddExemplar(features(0, 0, 0, 1, 8, 0, 0, 0), BreachClass::kLinkageAttack,
                    {Technique::kKAnonymity, Technique::kSuppression});
  store.AddExemplar(features(0, 0, 1, 1, 10, 0, 0, 0), BreachClass::kLinkageAttack,
                    {Technique::kKAnonymity, Technique::kSuppression});
  store.Train();
  return store;
}

std::vector<QueryFeatures> KMeansCluster(const std::vector<QueryFeatures>& points,
                                         size_t k, size_t iterations, Rng* rng) {
  std::vector<QueryFeatures> centroids;
  if (points.empty() || k == 0) return centroids;
  k = std::min(k, points.size());
  // Initialize with random distinct points.
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  for (size_t i = 0; i < k; ++i) centroids.push_back(points[order[i]]);

  std::vector<size_t> assignment(points.size(), 0);
  for (size_t iter = 0; iter < iterations; ++iter) {
    bool moved = false;
    for (size_t p = 0; p < points.size(); ++p) {
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const double d = points[p].DistanceTo(centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (assignment[p] != best) {
        assignment[p] = best;
        moved = true;
      }
    }
    std::vector<QueryFeatures> next(k);
    std::vector<size_t> counts(k, 0);
    for (size_t p = 0; p < points.size(); ++p) {
      for (size_t i = 0; i < QueryFeatures::kDims; ++i) {
        next[assignment[p]].v[i] += points[p].v[i];
      }
      ++counts[assignment[p]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        next[c] = centroids[c];  // keep empty clusters where they were
        continue;
      }
      for (size_t i = 0; i < QueryFeatures::kDims; ++i) {
        next[c].v[i] /= static_cast<double>(counts[c]);
      }
    }
    centroids = std::move(next);
    if (!moved) break;
  }
  return centroids;
}

}  // namespace source
}  // namespace piye

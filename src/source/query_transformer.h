#ifndef PIYE_SOURCE_QUERY_TRANSFORMER_H_
#define PIYE_SOURCE_QUERY_TRANSFORMER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/sql.h"
#include "source/piql.h"
#include "xml/loose_path.h"

namespace piye {
namespace source {

/// The Query Transformer of Figure 2(a): turns the XML query fragment the
/// mediation engine forwards into the destination source's local language —
/// here, a SQL SelectStatement over the source's actual relational schema.
///
/// Because the mediated schema can be partial, the fragment's attribute
/// names may only approximate the source's column names; the transformer
/// resolves them with the loose name matcher (acronyms, synonyms, token
/// similarity), which is the paper's answer to "the query fragment ... may
/// be approximately constructed".
class QueryTransformer {
 public:
  struct Transformed {
    relational::SelectStatement stmt;
    /// piql attribute name -> resolved source column.
    std::map<std::string, std::string> bindings;
    /// attributes that could not be resolved (dropped from the select list).
    std::vector<std::string> unresolved;
  };

  QueryTransformer(xml::LooseNameMatcher matcher, double threshold = 0.65)
      : matcher_(std::move(matcher)), threshold_(threshold) {}

  /// Transforms `query` against the given table. Fails if the WHERE clause
  /// or the aggregate references an attribute this source cannot resolve
  /// (partial select lists are tolerated; partial predicates are not — a
  /// silently weakened predicate would return rows the requester did not
  /// ask for).
  Result<Transformed> Transform(const PiqlQuery& query, const std::string& table_name,
                                const relational::Schema& schema) const;

  /// Best-scoring column of `schema` for `attribute`, or error below the
  /// threshold.
  Result<std::string> ResolveAttribute(const std::string& attribute,
                                       const relational::Schema& schema) const;

 private:
  xml::LooseNameMatcher matcher_;
  double threshold_;
};

/// Rewrites every column reference in `expr` through `bindings`; fails on an
/// unbound column. Shared subtrees are rebuilt only where needed.
Result<relational::ExprPtr> RewriteColumns(
    const relational::ExprPtr& expr,
    const std::map<std::string, std::string>& bindings);

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_QUERY_TRANSFORMER_H_

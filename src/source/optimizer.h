#ifndef PIYE_SOURCE_OPTIMIZER_H_
#define PIYE_SOURCE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/executor.h"
#include "relational/sql.h"

namespace piye {
namespace source {

/// The Privacy-conscious Query Optimization module of Figure 2(a): decides
/// where the privacy work goes in the plan. The two strategic choices the
/// paper motivates are modeled explicitly:
///
///  1. *rewrite-then-execute* vs *execute-then-filter*: push the policy
///     predicate into the scan so downstream operators (privacy checks,
///     perturbation) run on fewer rows — "by preprocessing the query we
///     shall be able to reduce the cost of execution as it will operate on a
///     smaller set of data";
///  2. *perturb-after-aggregate* vs *perturb-before-aggregate*: output
///     perturbation touches one row per group instead of every input row.
class PrivacyOptimizer {
 public:
  struct Plan {
    bool push_policy_filter = true;     ///< choice 1
    bool perturb_after_aggregate = true;  ///< choice 2
    double estimated_policy_selectivity = 1.0;
    double estimated_cost = 0.0;  ///< abstract row-touch units
    std::vector<std::string> steps;  ///< human-readable pipeline description
  };

  /// `policy_predicate` is the conjunction the rewriter injected (may be
  /// null). Selectivity is estimated on a row sample of the base table.
  static Result<Plan> Choose(const relational::SelectStatement& stmt,
                             const relational::Table& base_table,
                             const relational::ExprPtr& policy_predicate,
                             size_t sample_size = 256);

  /// Cost (row touches) of the plan shape, exposed for the abl-optimizer
  /// bench: filtering costs n; per-row privacy work costs `privacy_cost` per
  /// surviving row (or per input row if not pushed down).
  static double EstimateCost(size_t base_rows, double selectivity,
                             bool push_policy_filter, bool is_aggregate,
                             bool perturb_after_aggregate, size_t num_groups);
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_OPTIMIZER_H_

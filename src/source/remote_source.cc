#include "source/remote_source.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "common/strings.h"
#include "relational/xml_bridge.h"
#include "statdb/sampling.h"
#include "xml/parser.h"

namespace piye {
namespace source {

xml::LooseNameMatcher DefaultClinicalNameMatcher() {
  xml::LooseNameMatcher matcher;
  matcher.AddSynonyms({"sex", "gender"});
  matcher.AddSynonyms({"dob", "birthdate", "birthday"});
  matcher.AddSynonyms({"diagnosis", "disease", "condition"});
  matcher.AddSynonyms({"medication", "drug", "prescription"});
  matcher.AddSynonyms({"doctor", "physician", "provider"});
  matcher.AddSynonyms({"id", "identifier", "key"});
  matcher.AddSynonyms({"zip", "zipcode", "postcode"});
  matcher.AddSynonyms({"rate", "ratio", "pct", "percentage"});
  return matcher;
}

RemoteSource::RemoteSource(std::string owner, std::string table_name,
                           relational::Table data, uint64_t seed)
    : owner_(std::move(owner)),
      table_name_(std::move(table_name)),
      transformer_(DefaultClinicalNameMatcher()),
      perturb_seed_(seed ^ 0xBF58476D1CE4E5B9ULL),
      rsq_seed_(seed ^ 0x94D049BB133111EBULL) {
  catalog_.PutTable(table_name_, std::move(data));
  clusters_ = ClusterStore::Default();
}

Result<std::unique_ptr<RemoteSource>> RemoteSource::FromXmlRecords(
    const std::string& owner, const std::string& table_name,
    std::string_view xml_text, uint64_t seed) {
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  PIYE_ASSIGN_OR_RETURN(relational::Table table,
                        relational::TableFromXmlRecords(doc.root()));
  return std::make_unique<RemoteSource>(owner, table_name, std::move(table), seed);
}

const relational::Schema& RemoteSource::schema() const {
  return (*catalog_.GetTable(table_name_))->schema();
}

size_t RemoteSource::num_rows() const {
  return (*catalog_.GetTable(table_name_))->num_rows();
}

const relational::Table& RemoteSource::raw_table_for_testing() const {
  return **catalog_.GetTable(table_name_);
}

void RemoteSource::set_name_matcher(xml::LooseNameMatcher matcher) {
  transformer_ = QueryTransformer(std::move(matcher));
}

Result<relational::Table> RemoteSource::EffectiveTable() const {
  PIYE_ASSIGN_OR_RETURN(const relational::Table* raw, catalog_.GetTable(table_name_));
  const auto views = policies_.ViewsForTable(owner_, table_name_);
  relational::Table table = *raw;
  for (const policy::PrivacyView* view : views) {
    PIYE_ASSIGN_OR_RETURN(table, view->Apply(table));
  }
  return table;
}

Result<RemoteSource::FragmentResult> RemoteSource::ExecuteFragment(
    const PiqlQuery& fragment, const CancelToken& cancel) const {
  PIYE_RETURN_NOT_OK(cancel.Check());
  // (F) Fault injection, when configured: the source misbehaves the way an
  // autonomous federated service does — slow, transiently failing, or hung.
  // The sleeps are token-interruptible: a cancelled query does not hold a
  // pool thread hostage for the remainder of a simulated hang.
  if (faults_.latency_micros > 0 || faults_.error_rate > 0.0 ||
      faults_.drop_rate > 0.0) {
    if (faults_.latency_micros > 0 &&
        !cancel.SleepFor(std::chrono::microseconds(faults_.latency_micros))) {
      return cancel.status();
    }
    const uint64_t call = fault_calls_.fetch_add(1, std::memory_order_relaxed);
    Rng fault_rng(faults_.seed ^ (call * 0x9E3779B97F4A7C15ULL) ^
                  0xD1B54A32D192ED03ULL);
    if (fault_rng.NextBernoulli(faults_.drop_rate)) {
      if (!cancel.SleepFor(std::chrono::microseconds(faults_.hang_micros))) {
        return cancel.status();
      }
      return Status::Unavailable("injected drop: source '" + owner_ +
                                 "' hung past its deadline");
    }
    if (fault_rng.NextBernoulli(faults_.error_rate)) {
      return Status::Unavailable("injected fault: source '" + owner_ +
                                 "' failed transiently");
    }
  }

  // (0) Privacy views define what exists at all.
  PIYE_ASSIGN_OR_RETURN(relational::Table effective, EffectiveTable());
  const relational::Table* base = &effective;

  // (1) Query Transformer: XML fragment → local SQL with loose name
  // resolution.
  PIYE_ASSIGN_OR_RETURN(QueryTransformer::Transformed transformed,
                        transformer_.Transform(fragment, table_name_, base->schema()));

  // (2) Query Rewriter: integrate RBAC + policies; may strip columns.
  PrivacyRewriter rewriter(&policies_, &rbac_, owner_);
  PIYE_ASSIGN_OR_RETURN(PrivacyRewriter::Rewritten rewritten,
                        rewriter.Rewrite(transformed.stmt, fragment));

  FragmentResult out;
  out.denied_columns = rewritten.denied_columns;
  out.loss_budget = rewritten.loss_budget;

  // (3) Cluster Matching: classify the breach profile without executing.
  const QueryFeatures features = QueryFeatures::Extract(rewritten.stmt);
  if (const QueryCluster* cluster = clusters_.Map(features)) {
    out.breach = cluster->breach;
    out.techniques = cluster->techniques;
  }
  // Merge in the defaults implied by the disclosure forms.
  for (Technique t :
       preservation_.DefaultTechniques(rewritten.column_forms, rewritten.loss_budget)) {
    if (std::find(out.techniques.begin(), out.techniques.end(), t) ==
        out.techniques.end()) {
      out.techniques.push_back(t);
    }
  }

  // (4) Privacy Loss Computation; the requester's tolerance gates execution.
  out.losses =
      LossComputation::Estimate(rewritten.column_forms, rewritten.denied_columns.size());
  if (out.losses.information_loss > fragment.max_information_loss) {
    return Status::PrivacyViolation(
        "release would lose more information than the requester tolerates "
        "(information loss " +
        std::to_string(out.losses.information_loss) + " > " +
        std::to_string(fragment.max_information_loss) + ")");
  }

  // Cheap stages are done; poll before the expensive execution half.
  PIYE_RETURN_NOT_OK(cancel.Check());

  // (5) Privacy-conscious optimization (the rewritten statement already has
  // the policy predicate pushed down; the plan records the reasoning).
  PIYE_ASSIGN_OR_RETURN(
      out.plan, PrivacyOptimizer::Choose(rewritten.stmt, *base, rewritten.stmt.where));

  // (5b) Statistical query-set restriction: when the cluster matcher tagged
  // the query as aggregate-inference-prone, refuse *predicate-selected
  // global* aggregates whose query set could act as a tracker (|C| < k or
  // |C| > N - k). Grouped or unfiltered statistics are not attacker-chosen
  // subsets; they are governed by the rounding/noise techniques instead.
  if (rewritten.stmt.HasAggregates() && rewritten.stmt.where != nullptr &&
      rewritten.stmt.group_by.empty() &&
      std::find(out.techniques.begin(), out.techniques.end(),
                Technique::kQuerySetRestriction) != out.techniques.end()) {
    PIYE_ASSIGN_OR_RETURN(relational::Table query_set,
                          relational::Executor::Filter(*base, rewritten.stmt.where));
    const size_t k = preservation_.config().k;
    const size_t n = base->num_rows();
    if (query_set.num_rows() < k || query_set.num_rows() + k > n) {
      return Status::PrivacyViolation(
          "aggregate query set size " + std::to_string(query_set.num_rows()) +
          " outside [" + std::to_string(k) + ", " +
          std::to_string(n >= k ? n - k : 0) + "] — tracker risk");
    }
  }

  // (6) Execute against the effective (view-filtered) table. When enabled,
  // ungrouped single aggregates are answered through Denning random-sample
  // queries instead of the exact executor.
  relational::Table result;
  const relational::SelectItem* lone_aggregate =
      rewritten.stmt.group_by.empty() && rewritten.stmt.items.size() == 1 &&
              rewritten.stmt.items[0].kind == relational::SelectItem::Kind::kAggregate &&
              !rewritten.stmt.items[0].column.empty()
          ? &rewritten.stmt.items[0]
          : nullptr;
  if (preservation_.config().use_random_sample_queries && lone_aggregate != nullptr) {
    // Key records by their stable ordinal in the effective table. The
    // payload columns are shared (copy-on-write), only _rowid is built.
    relational::Table keyed;
    for (size_t c = 0; c < base->schema().num_columns(); ++c) {
      keyed.AddColumn(base->schema().column(c), base->col(c));
    }
    relational::ColumnVector rowid(relational::ColumnType::kInt64);
    rowid.Reserve(base->num_rows());
    for (size_t r = 0; r < base->num_rows(); ++r) {
      rowid.AppendInt(static_cast<int64_t>(r));
    }
    keyed.AddColumn({"_rowid", relational::ColumnType::kInt64}, std::move(rowid));
    statdb::AggregateQuery agg_query;
    agg_query.func = lone_aggregate->func;
    agg_query.column = lone_aggregate->column;
    agg_query.predicate = rewritten.stmt.where;
    // The sampling seed is a per-source constant: re-asking the same query
    // must return the same answer (no averaging attack), which is the whole
    // point of Denning's design.
    const statdb::RandomSampleQueries rsq("_rowid",
                                          preservation_.config().sampling_rate,
                                          rsq_seed_);
    PIYE_ASSIGN_OR_RETURN(double value, rsq.Answer(agg_query, keyed));
    relational::Table sampled(relational::Schema{
        {lone_aggregate->OutputName(), relational::ColumnType::kDouble}});
    sampled.AppendRowUnchecked({relational::Value::Real(value)});
    result = std::move(sampled);
  } else {
    relational::Catalog scratch;
    scratch.PutTable(table_name_, *base);
    relational::Executor executor(&scratch);
    PIYE_ASSIGN_OR_RETURN(result, executor.Execute(rewritten.stmt));
  }

  PIYE_RETURN_NOT_OK(cancel.Check());

  // (7) Privacy preservation on the results. The RNG stream is derived per
  // call from (source seed, serialized fragment): concurrent fragments never
  // contend on generator state, results are independent of execution order,
  // and re-asking the same fragment reproduces the identical perturbation
  // (no averaging attack across retries or repeats).
  Rng call_rng(perturb_seed_ ^
               strings::Fnv1a64(xml::Serialize(*fragment.ToXml(), /*indent=*/-1)));
  PIYE_ASSIGN_OR_RETURN(
      result, preservation_.Apply(std::move(result), rewritten.column_forms,
                                  rewritten.loss_budget, out.techniques, &call_rng));

  // (8) XML Transformer + (9) Metadata Tagger.
  out.xml = relational::TableToXml(result, table_name_);
  MetadataTagger::Tag(out.xml.get(), owner_, fragment, rewritten.column_forms,
                      rewritten.column_budgets, out.losses, rewritten.loss_budget);
  out.table = std::move(result);
  return out;
}

Result<std::vector<match::ColumnSketch>> RemoteSource::ExportSketches(
    const std::string& shared_key) const {
  PIYE_ASSIGN_OR_RETURN(relational::Table effective, EffectiveTable());
  const relational::Table* base = &effective;
  // A column belongs in the mediated schema if *some* purpose can ever see
  // it, so probe with every purpose the policy mentions (plus the root).
  std::vector<std::string> probe_purposes{"any"};
  if (auto policy = policies_.GetPolicy(owner_); policy.ok()) {
    for (const auto& rule : (*policy)->rules()) {
      for (const auto& p : rule.purposes) {
        if (p != "*") probe_purposes.push_back(p);
      }
    }
  }
  std::vector<match::ColumnSketch> out;
  for (const auto& col : base->schema().columns()) {
    policy::Disclosure d;
    for (const auto& purpose : probe_purposes) {
      const policy::Disclosure candidate = policies_.EffectiveDisclosure(
          owner_, /*table=*/"*", col.name, purpose, /*recipient=*/"mediator");
      if (candidate.form > d.form) d = candidate;
    }
    if (!d.allowed()) continue;  // fully private columns stay invisible
    const bool name_public = hidden_schema_columns_.count(col.name) == 0;
    PIYE_ASSIGN_OR_RETURN(
        match::ColumnSketch sketch,
        match::ColumnSketch::Build({owner_, table_name_, col.name}, *base, shared_key,
                                   name_public));
    out.push_back(std::move(sketch));
  }
  return out;
}

}  // namespace source
}  // namespace piye

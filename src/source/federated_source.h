#ifndef PIYE_SOURCE_FEDERATED_SOURCE_H_
#define PIYE_SOURCE_FEDERATED_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "match/schema_matcher.h"
#include "source/loss_computation.h"
#include "source/optimizer.h"
#include "source/piql.h"
#include "source/preservation.h"
#include "source/query_cluster.h"
#include "xml/node.h"

namespace piye {
namespace source {

/// Cumulative transport-level counters of one federated source, surfaced
/// through `MediationEngine::Health()` so operators can tell a network
/// failure (connects climbing, frames stalling, corrupt frames) apart from a
/// healthy source refusing on privacy grounds. An in-process source reports
/// all zeros with `over_network == false`.
struct TransportStats {
  bool over_network = false;  ///< true ⇒ the counters below are live
  uint64_t connects = 0;      ///< successful connection establishments
  uint64_t reconnects = 0;    ///< connects after a connection was lost
  uint64_t connect_failures = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t timeouts = 0;        ///< deadline expiries waiting on the wire
  uint64_t corrupt_frames = 0;  ///< CRC/framing violations (connection killed)
  uint64_t disconnects = 0;     ///< connections lost mid-use
};

/// The mediation engine's execution-facing view of one autonomous source —
/// the seam along which "federated" becomes literal. The engine talks to a
/// source exclusively through this interface: `ExecuteFragment` (XML query
/// in, tagged XML result out) and `ExportSketches` (privacy-respecting
/// schema summaries for mediated-schema generation). `RemoteSource`
/// implements it in-process (each source runs the full Figure 2(a) pipeline
/// in the mediator's address space); `net::NetSource` implements it over the
/// length-prefixed wire protocol against a source-server process, so the
/// same engine code paths — fan-out, retry, deadlines, breakers, quorum —
/// run unchanged against a real network.
///
/// Contract: implementations must be safe for concurrent `ExecuteFragment`
/// calls (the engine fans fragments out across a thread pool), must honour
/// the `CancelToken` cooperatively, and must report failures with faithful
/// status codes — `kUnavailable` for transient transport faults the engine
/// may retry, `kDeadlineExceeded` for expired deadlines, and
/// `kPrivacyViolation` for policy refusals (never retried, never blamed on
/// the transport).
class FederatedSource {
 public:
  virtual ~FederatedSource() = default;

  /// The organization this source answers for (policy key; unique per
  /// engine).
  virtual const std::string& owner() const = 0;

  /// Everything `ExecuteFragment` reports back besides the XML payload.
  /// In-process sources fill the per-stage diagnostics (used by the Fig. 2
  /// pipeline benchmark); a network source reconstructs only what crosses
  /// the wire — the tagged XML and its parsed `table` — and leaves the
  /// diagnostics at their defaults.
  struct FragmentResult {
    std::unique_ptr<xml::XmlNode> xml;  ///< tagged <result> element
    relational::Table table;            ///< the released rows, pre-serialization
    PrivacyOptimizer::Plan plan;
    BreachClass breach = BreachClass::kNone;
    std::vector<Technique> techniques;
    LossEstimate losses;
    std::vector<std::string> denied_columns;
    double loss_budget = 1.0;
  };

  /// Executes one query fragment under the source's privacy machinery.
  virtual Result<FragmentResult> ExecuteFragment(
      const PiqlQuery& fragment, const CancelToken& cancel = {}) const = 0;

  /// Column sketches for mediated-schema generation, respecting policy.
  virtual Result<std::vector<match::ColumnSketch>> ExportSketches(
      const std::string& shared_key) const = 0;

  /// Transport-level counters (zeros for in-process sources).
  virtual TransportStats transport_stats() const { return TransportStats{}; }
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_FEDERATED_SOURCE_H_

#ifndef PIYE_SOURCE_PRIVACY_REWRITER_H_
#define PIYE_SOURCE_PRIVACY_REWRITER_H_

#include <map>
#include <string>
#include <vector>

#include "access/rbac.h"
#include "common/result.h"
#include "policy/policy_store.h"
#include "relational/sql.h"
#include "source/piql.h"

namespace piye {
namespace source {

/// The Query Rewriter of Figure 2(a). Given the transformed SQL and the
/// requester's identity/purpose, it consults the access rules (RBAC) and the
/// privacy policies/preferences and produces a query that "will only
/// retrieve the information that can be accessed by the requester as well as
/// preserves the privacy of the data":
///
///  - columns failing RBAC or with an effective disclosure of kDenied are
///    *removed* from the select list (recorded in `denied_columns`);
///  - kAggregate columns may appear only inside aggregate functions; a
///    row-level select of them is denied;
///  - the policies' row conditions are ANDed into the WHERE clause
///    (rewrite-then-execute — the cheaper alternative the paper argues for);
///  - the smallest max-privacy-loss budget across applied rules becomes the
///    disclosure budget the preservation module must respect.
class PrivacyRewriter {
 public:
  struct Rewritten {
    relational::SelectStatement stmt;
    /// Effective disclosure form per surviving output column.
    std::map<std::string, policy::DisclosureForm> column_forms;
    /// Policy loss budget per surviving output column (1.0 = unconstrained).
    std::map<std::string, double> column_budgets;
    /// Columns stripped by RBAC or policy.
    std::vector<std::string> denied_columns;
    /// Tightest policy loss budget across the surviving columns.
    double loss_budget = 1.0;
  };

  PrivacyRewriter(const policy::PolicyStore* policies, const access::RbacDatabase* rbac,
                  std::string source_owner)
      : policies_(policies), rbac_(rbac), owner_(std::move(source_owner)) {}

  /// Rewrites `stmt`. Fails with kPrivacyViolation when nothing at all may
  /// be disclosed (every column denied), and with kPermissionDenied when the
  /// WHERE clause itself touches a denied column (filtering on a secret
  /// leaks it through the result's row set).
  Result<Rewritten> Rewrite(const relational::SelectStatement& stmt,
                            const PiqlQuery& query) const;

 private:
  policy::Disclosure EffectiveFor(const std::string& column,
                                  const PiqlQuery& query) const;

  const policy::PolicyStore* policies_;
  const access::RbacDatabase* rbac_;
  std::string owner_;
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_PRIVACY_REWRITER_H_

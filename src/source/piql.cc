#include "source/piql.h"

#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "xml/parser.h"

namespace piye {
namespace source {

namespace {

Result<relational::AggFunc> ParseAggFunc(const std::string& s) {
  const std::string t = strings::ToLower(strings::Trim(s));
  if (t == "count") return relational::AggFunc::kCount;
  if (t == "sum") return relational::AggFunc::kSum;
  if (t == "avg") return relational::AggFunc::kAvg;
  if (t == "min") return relational::AggFunc::kMin;
  if (t == "max") return relational::AggFunc::kMax;
  if (t == "stddev") return relational::AggFunc::kStdDev;
  return Status::ParseError("unknown aggregate function '" + s + "'");
}

}  // namespace

Result<PiqlQuery> PiqlQuery::FromXml(const xml::XmlNode& node) {
  if (node.name() != "query") {
    return Status::ParseError("expected <query>, got <" + node.name() + ">");
  }
  PiqlQuery q;
  if (const std::string* r = node.GetAttr("requester")) q.requester = *r;
  if (const std::string* p = node.GetAttr("purpose")) q.purpose = *p;
  if (const std::string* l = node.GetAttr("maxLoss")) {
    q.max_information_loss = std::strtod(l->c_str(), nullptr);
  }
  if (const xml::XmlNode* target = node.FirstChild("target")) {
    if (const std::string* path = target->GetAttr("path")) q.target_path = *path;
  }
  for (const xml::XmlNode* sel : node.Children("select")) {
    q.select.push_back(strings::Trim(sel->InnerText()));
  }
  if (const xml::XmlNode* where = node.FirstChild("where")) {
    PIYE_ASSIGN_OR_RETURN(q.where, relational::ParseExpression(where->InnerText()));
  }
  if (const xml::XmlNode* agg = node.FirstChild("aggregate")) {
    PiqlAggregate spec;
    const std::string* func = agg->GetAttr("func");
    const std::string* attr = agg->GetAttr("attribute");
    if (func == nullptr || attr == nullptr) {
      return Status::ParseError("<aggregate> needs func and attribute");
    }
    PIYE_ASSIGN_OR_RETURN(spec.func, ParseAggFunc(*func));
    spec.attribute = *attr;
    for (const xml::XmlNode* g : agg->Children("groupBy")) {
      spec.group_by.push_back(strings::Trim(g->InnerText()));
    }
    q.aggregate = std::move(spec);
  }
  return q;
}

Result<PiqlQuery> PiqlQuery::Parse(std::string_view xml_text) {
  PIYE_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  return FromXml(doc.root());
}

std::unique_ptr<xml::XmlNode> PiqlQuery::ToXml() const {
  auto node = xml::XmlNode::Element("query");
  node->SetAttr("requester", requester);
  node->SetAttr("purpose", purpose);
  node->SetAttr("maxLoss", strings::Format("%g", max_information_loss));
  xml::XmlNode* target = node->AddElement("target");
  target->SetAttr("path", target_path);
  for (const auto& s : select) node->AddElementWithText("select", s);
  if (where != nullptr) node->AddElementWithText("where", where->ToString());
  if (aggregate.has_value()) {
    xml::XmlNode* agg = node->AddElement("aggregate");
    agg->SetAttr("func", relational::AggFuncToString(aggregate->func));
    agg->SetAttr("attribute", aggregate->attribute);
    for (const auto& g : aggregate->group_by) agg->AddElementWithText("groupBy", g);
  }
  return node;
}

std::vector<std::string> PiqlQuery::ReferencedAttributes() const {
  std::set<std::string> names(select.begin(), select.end());
  if (where != nullptr) {
    std::set<std::string> cols;
    where->CollectColumns(&cols);
    names.insert(cols.begin(), cols.end());
  }
  if (aggregate.has_value()) {
    if (!aggregate->attribute.empty()) names.insert(aggregate->attribute);
    names.insert(aggregate->group_by.begin(), aggregate->group_by.end());
  }
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace source
}  // namespace piye

#ifndef PIYE_SOURCE_PIQL_H_
#define PIYE_SOURCE_PIQL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/sql.h"
#include "xml/node.h"

namespace piye {
namespace source {

/// Aggregate request inside a PIQL query.
struct PiqlAggregate {
  relational::AggFunc func = relational::AggFunc::kAvg;
  std::string attribute;               ///< mediated attribute name (loose)
  std::vector<std::string> group_by;   ///< mediated attribute names
};

/// PIQL — the Privacy-conscious Query Language of Section 5.
///
/// A requester formulates queries against the *mediated* schema, which may
/// be partial, so attribute names are matched loosely downstream (e.g.
/// `dateOfBirth` reaches a source column named `dob`). Beyond the relational
/// content, a PIQL query carries the requester's identity, the stated
/// purpose, and the maximum information loss the requester will accept in
/// the integrated result — the three privacy-specific inputs the paper adds
/// to query formulation.
///
/// XML form:
///   <query requester="cdc" purpose="disease-surveillance" maxLoss="0.4">
///     <target path="//patient"/>
///     <select>dateOfBirth</select>
///     <select>diagnosis</select>
///     <where>diagnosis = 'diabetes'</where>              (optional; being XML
///         text, comparison operators use entities: age &lt; 40)
///     <aggregate func="AVG" attribute="complianceRate">  (optional)
///       <groupBy>hmo</groupBy>
///     </aggregate>
///   </query>
struct PiqlQuery {
  std::string requester;
  std::string purpose = "any";
  double max_information_loss = 1.0;
  std::string target_path = "//record";
  std::vector<std::string> select;
  relational::ExprPtr where;  ///< over mediated attribute names; may be null
  std::optional<PiqlAggregate> aggregate;

  /// Parses the XML form above. `target_path` is informational metadata for
  /// hierarchical sources (the record path the requester believes it is
  /// addressing); resolution happens through the mediated schema.
  static Result<PiqlQuery> Parse(std::string_view xml_text);
  static Result<PiqlQuery> FromXml(const xml::XmlNode& node);
  std::unique_ptr<xml::XmlNode> ToXml() const;

  /// All attribute names the query touches (select + where + aggregate).
  std::vector<std::string> ReferencedAttributes() const;

  bool IsAggregate() const { return aggregate.has_value(); }
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_PIQL_H_

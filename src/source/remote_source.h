#ifndef PIYE_SOURCE_REMOTE_SOURCE_H_
#define PIYE_SOURCE_REMOTE_SOURCE_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "access/rbac.h"
#include "common/cancel.h"
#include "common/result.h"
#include "common/rng.h"
#include "match/schema_matcher.h"
#include "policy/policy_store.h"
#include "relational/executor.h"
#include "source/federated_source.h"
#include "source/loss_computation.h"
#include "source/metadata_tagger.h"
#include "source/optimizer.h"
#include "source/piql.h"
#include "source/preservation.h"
#include "source/privacy_rewriter.h"
#include "source/query_cluster.h"
#include "source/query_transformer.h"
#include "xml/loose_path.h"

namespace piye {
namespace source {

/// A remote source running the complete privacy-preserving query processing
/// framework of Figure 2(a), implementing the `FederatedSource` execution
/// interface in-process. The mediation engine talks to it exclusively
/// through `ExecuteFragment` (XML query in, tagged XML result out) and
/// `ExportSketches` (privacy-respecting schema summaries for mediated-schema
/// generation) — it never sees the raw tables. The same object can also be
/// hosted out-of-process by a `net::SourceServer`, in which case the engine
/// reaches it through a `net::NetSource` over the wire protocol instead.
class RemoteSource : public FederatedSource {
 public:
  /// `owner` names the organization (policy key); `seed` drives the
  /// perturbation RNG deterministically.
  RemoteSource(std::string owner, std::string table_name, relational::Table data,
               uint64_t seed = 0);

  /// Builds a source from a hierarchical store: record-shaped XML text is
  /// ingested through relational::TableFromXmlRecords (schema and types
  /// inferred), so XML-native organizations plug into the same pipeline.
  static Result<std::unique_ptr<RemoteSource>> FromXmlRecords(
      const std::string& owner, const std::string& table_name,
      std::string_view xml_text, uint64_t seed = 0);

  const std::string& owner() const override { return owner_; }
  const std::string& table_name() const { return table_name_; }
  const relational::Schema& schema() const;
  size_t num_rows() const;

  /// Mutable configuration (populated during deployment).
  policy::PolicyStore* mutable_policies() { return &policies_; }
  const policy::PolicyStore& policies() const { return policies_; }
  access::RbacDatabase* mutable_rbac() { return &rbac_; }
  void set_cluster_store(ClusterStore store) { clusters_ = std::move(store); }
  void set_preservation_config(PreservationModule::Config config) {
    preservation_ = PreservationModule(config);
  }
  void set_name_matcher(xml::LooseNameMatcher matcher);

  /// Seeded fault injection for testing and benchmarking the mediation
  /// engine's degradation behaviour against a misbehaving autonomous
  /// source. Faults apply per `ExecuteFragment` call: every call first
  /// sleeps `latency_micros`; then, with probability `error_rate`, fails
  /// with `kUnavailable` (a transient fault the engine may retry); with
  /// probability `drop_rate`, simulates a hang — sleeping `hang_micros`
  /// before failing, long enough to trip any realistic per-source deadline.
  /// Decisions are drawn from an RNG stream seeded by `seed` and a per-call
  /// counter, so a given source misbehaves reproducibly in call order.
  struct FaultInjection {
    uint64_t latency_micros = 0;
    double error_rate = 0.0;
    double drop_rate = 0.0;
    uint64_t hang_micros = 50'000;
    uint64_t seed = 0;
  };
  void set_fault_injection(const FaultInjection& faults) { faults_ = faults; }
  const FaultInjection& fault_injection() const { return faults_; }

  /// Marks a column whose *name* is itself sensitive: it still participates
  /// in mediated-schema generation (via instance sketches) but is exported
  /// under a salted hash tag, so the mediated schema stays partial
  /// (Section 5: "the schemas of some sources may not be available freely").
  void HideSchemaColumn(const std::string& column) {
    hidden_schema_columns_.insert(column);
  }

  /// Everything `ExecuteFragment` reports back besides the XML payload —
  /// per-stage diagnostics used by the Fig. 2 pipeline benchmark. The type
  /// itself now lives on the `FederatedSource` interface; this alias keeps
  /// the historical `RemoteSource::FragmentResult` spelling working.
  using FragmentResult = FederatedSource::FragmentResult;

  /// Runs the full pipeline: privacy view → transform → rewrite →
  /// cluster-match → loss → optimize → (query-set restriction) → execute →
  /// preserve → serialize → tag.
  ///
  /// Safe for concurrent callers: the pipeline stages are all const over
  /// the source's configuration, and stochastic preservation draws from a
  /// per-call RNG stream derived from the source seed and the fragment's
  /// serialized content rather than shared mutable generator state. That
  /// derivation also means re-asking the *same* fragment reproduces the
  /// same perturbation — averaging repeated answers gains an attacker
  /// nothing (the same property Denning's random-sample queries rely on).
  ///
  /// `cancel` makes the call cooperative: the pipeline polls the token at
  /// its stage boundaries and the fault-injection sleeps are interruptible,
  /// so an expired query deadline or a caller cancellation returns promptly
  /// with the token's status (kDeadlineExceeded / kCancelled) instead of
  /// running the remaining stages — or sleeping out a simulated hang — for
  /// an answer nobody will read. The default token never fires.
  Result<FragmentResult> ExecuteFragment(
      const PiqlQuery& fragment, const CancelToken& cancel = {}) const override;

  /// The table the pipeline actually sees: the raw table filtered through
  /// every privacy view registered for it (the Section 3 privacy-view
  /// language — rows and columns outside the views simply do not exist for
  /// the outside world). Returns the raw table when no view is registered.
  Result<relational::Table> EffectiveTable() const;

  /// Column sketches for mediated-schema generation, respecting policy: a
  /// denied column is not exported at all; a column disclosed only in
  /// coarsened form is exported with a hashed (non-public) name.
  Result<std::vector<match::ColumnSketch>> ExportSketches(
      const std::string& shared_key) const override;

  /// Direct (policy-bypassing) access for tests and for the no-privacy
  /// baseline integrator in the benchmarks.
  const relational::Table& raw_table_for_testing() const;

 private:
  std::string owner_;
  std::string table_name_;
  std::set<std::string> hidden_schema_columns_;
  relational::Catalog catalog_;
  policy::PolicyStore policies_;
  access::RbacDatabase rbac_;
  ClusterStore clusters_;
  PreservationModule preservation_;
  QueryTransformer transformer_;
  uint64_t perturb_seed_;
  uint64_t rsq_seed_;
  FaultInjection faults_;
  /// Per-call fault-decision counter (the only mutable state ExecuteFragment
  /// touches; atomic so concurrent callers draw distinct fault decisions).
  mutable std::atomic<uint64_t> fault_calls_{0};
};

/// The default clinical-domain synonym dictionary used by the examples and
/// tests (sex~gender, dob~birthdate tokens, etc.).
xml::LooseNameMatcher DefaultClinicalNameMatcher();

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_REMOTE_SOURCE_H_

#include "source/query_transformer.h"

#include <cctype>

#include "common/macros.h"

namespace piye {
namespace source {

using relational::Expression;
using relational::ExprPtr;

Result<ExprPtr> RewriteColumns(const ExprPtr& expr,
                               const std::map<std::string, std::string>& bindings) {
  if (expr == nullptr) return ExprPtr(nullptr);
  switch (expr->op()) {
    case Expression::Op::kLiteral:
      return expr;
    case Expression::Op::kColumn: {
      auto it = bindings.find(expr->column());
      if (it == bindings.end()) {
        return Status::NotFound("unbound attribute '" + expr->column() + "'");
      }
      if (it->second == expr->column()) return expr;
      return Expression::ColumnRef(it->second);
    }
    case Expression::Op::kNot: {
      PIYE_ASSIGN_OR_RETURN(ExprPtr operand, RewriteColumns(expr->lhs(), bindings));
      return Expression::Not(operand);
    }
    case Expression::Op::kIn: {
      PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, RewriteColumns(expr->lhs(), bindings));
      return Expression::In(lhs, expr->in_values());
    }
    default: {
      PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, RewriteColumns(expr->lhs(), bindings));
      PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, RewriteColumns(expr->rhs(), bindings));
      return Expression::Binary(expr->op(), lhs, rhs);
    }
  }
}

Result<std::string> QueryTransformer::ResolveAttribute(
    const std::string& attribute, const relational::Schema& schema) const {
  std::string best;
  double best_score = threshold_;
  for (const auto& col : schema.columns()) {
    const double s = matcher_.NameSimilarity(attribute, col.name);
    if (s >= best_score) {
      best_score = s;
      best = col.name;
    }
  }
  if (best.empty()) {
    return Status::NotFound("no column of [" + schema.ToString() +
                            "] matches attribute '" + attribute + "'");
  }
  return best;
}

Result<QueryTransformer::Transformed> QueryTransformer::Transform(
    const PiqlQuery& query, const std::string& table_name,
    const relational::Schema& schema) const {
  Transformed out;
  out.stmt.table = table_name;

  // Resolve every referenced attribute once.
  for (const auto& attr : query.ReferencedAttributes()) {
    auto col = ResolveAttribute(attr, schema);
    if (col.ok()) {
      out.bindings[attr] = *col;
    } else {
      out.unresolved.push_back(attr);
    }
  }
  // WHERE must be fully resolvable — a weakened predicate over-discloses.
  if (query.where != nullptr) {
    PIYE_ASSIGN_OR_RETURN(out.stmt.where, RewriteColumns(query.where, out.bindings));
  }
  if (query.aggregate.has_value()) {
    const PiqlAggregate& agg = *query.aggregate;
    std::string agg_col;
    if (!agg.attribute.empty()) {
      auto it = out.bindings.find(agg.attribute);
      if (it == out.bindings.end()) {
        return Status::NotFound("aggregate attribute '" + agg.attribute +
                                "' not resolvable at this source");
      }
      agg_col = it->second;
    }
    for (const auto& g : agg.group_by) {
      auto it = out.bindings.find(g);
      if (it == out.bindings.end()) {
        return Status::NotFound("group-by attribute '" + g +
                                "' not resolvable at this source");
      }
      out.stmt.group_by.push_back(it->second);
      // Alias back to the mediated attribute name so results from different
      // sources align column-wise at the integrator.
      out.stmt.items.push_back(relational::SelectItem::Col(it->second, g));
    }
    std::string agg_alias = relational::AggFuncToString(agg.func);
    for (char& c : agg_alias) c = static_cast<char>(std::tolower(c));
    agg_alias += "_" + (agg.attribute.empty() ? std::string("all") : agg.attribute);
    out.stmt.items.push_back(relational::SelectItem::Agg(agg.func, agg_col, agg_alias));
  } else {
    for (const auto& attr : query.select) {
      auto it = out.bindings.find(attr);
      if (it == out.bindings.end()) continue;  // tolerated: partial select
      out.stmt.items.push_back(relational::SelectItem::Col(it->second, attr));
    }
    if (out.stmt.items.empty()) {
      return Status::NotFound("no selected attribute is resolvable at this source");
    }
  }
  return out;
}

}  // namespace source
}  // namespace piye

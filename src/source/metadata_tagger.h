#ifndef PIYE_SOURCE_METADATA_TAGGER_H_
#define PIYE_SOURCE_METADATA_TAGGER_H_

#include <map>
#include <string>

#include "policy/policy.h"
#include "source/loss_computation.h"
#include "source/piql.h"
#include "xml/node.h"

namespace piye {
namespace source {

/// The Metadata Tagger of Figure 2(a): annotates an outgoing XML result with
/// the privacy metadata the mediation engine needs to re-verify the
/// integrated results — source owner, purpose served, per-column disclosure
/// forms, the estimated privacy loss, and the policy budget it was released
/// under.
class MetadataTagger {
 public:
  /// Mutates `result` (a <result> element from relational::TableToXml):
  /// sets privacy attributes on the root and `form`/`loss`/`budget`
  /// attributes on each <column> of its <schema>, so the mediator's privacy
  /// control can account per data item.
  static void Tag(xml::XmlNode* result, const std::string& source_owner,
                  const PiqlQuery& query,
                  const std::map<std::string, policy::DisclosureForm>& column_forms,
                  const std::map<std::string, double>& column_budgets,
                  const LossEstimate& losses, double loss_budget);

  /// Reads back the privacy loss recorded on a tagged result (0 if absent).
  static double ReadPrivacyLoss(const xml::XmlNode& result);
  /// Reads back the loss budget recorded on a tagged result (1 if absent).
  static double ReadLossBudget(const xml::XmlNode& result);
  /// Reads back the source owner ("" if absent).
  static std::string ReadOwner(const xml::XmlNode& result);
};

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_METADATA_TAGGER_H_

#include "source/metadata_tagger.h"

#include <cstdlib>

#include "source/loss_computation.h"

#include "common/strings.h"

namespace piye {
namespace source {

void MetadataTagger::Tag(
    xml::XmlNode* result, const std::string& source_owner, const PiqlQuery& query,
    const std::map<std::string, policy::DisclosureForm>& column_forms,
    const std::map<std::string, double>& column_budgets,
    const LossEstimate& losses, double loss_budget) {
  result->SetAttr("owner", source_owner);
  result->SetAttr("purpose", query.purpose);
  result->SetAttr("requester", query.requester);
  result->SetAttr("privacyLoss", strings::Format("%g", losses.privacy_loss));
  result->SetAttr("informationLoss", strings::Format("%g", losses.information_loss));
  result->SetAttr("lossBudget", strings::Format("%g", loss_budget));
  xml::XmlNode* schema = result->FirstChild("schema");
  if (schema == nullptr) return;
  for (auto& child : schema->mutable_children()) {
    if (!child->is_element() || child->name() != "column") continue;
    const std::string* name_ptr = child->GetAttr("name");
    if (name_ptr == nullptr) continue;
    // Copy: SetAttr below may grow the attribute vector and invalidate the
    // pointer GetAttr returned.
    const std::string name = *name_ptr;
    auto it = column_forms.find(name);
    if (it != column_forms.end()) {
      child->SetAttr("form", policy::DisclosureFormToString(it->second));
      child->SetAttr("loss",
                     strings::Format("%g", LossComputation::FormWeight(it->second)));
    }
    auto budget = column_budgets.find(name);
    if (budget != column_budgets.end()) {
      child->SetAttr("budget", strings::Format("%g", budget->second));
    }
  }
}

double MetadataTagger::ReadPrivacyLoss(const xml::XmlNode& result) {
  const std::string* v = result.GetAttr("privacyLoss");
  return v == nullptr ? 0.0 : std::strtod(v->c_str(), nullptr);
}

double MetadataTagger::ReadLossBudget(const xml::XmlNode& result) {
  const std::string* v = result.GetAttr("lossBudget");
  return v == nullptr ? 1.0 : std::strtod(v->c_str(), nullptr);
}

std::string MetadataTagger::ReadOwner(const xml::XmlNode& result) {
  const std::string* v = result.GetAttr("owner");
  return v == nullptr ? "" : *v;
}

}  // namespace source
}  // namespace piye

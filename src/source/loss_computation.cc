#include "source/loss_computation.h"

#include <algorithm>

namespace piye {
namespace source {

using policy::DisclosureForm;

double LossComputation::FormWeight(DisclosureForm form) {
  switch (form) {
    case DisclosureForm::kDenied:
      return 0.0;
    case DisclosureForm::kAggregate:
      return 0.1;
    case DisclosureForm::kRange:
      return 0.3;
    case DisclosureForm::kGeneralized:
      return 0.5;
    case DisclosureForm::kExact:
      return 0.8;
  }
  return 0.0;
}

double LossComputation::UtilityWeight(DisclosureForm form) {
  switch (form) {
    case DisclosureForm::kDenied:
      return 0.0;
    case DisclosureForm::kAggregate:
      return 0.4;
    case DisclosureForm::kRange:
      return 0.6;
    case DisclosureForm::kGeneralized:
      return 0.7;
    case DisclosureForm::kExact:
      return 1.0;
  }
  return 0.0;
}

LossEstimate LossComputation::Estimate(
    const std::map<std::string, DisclosureForm>& column_forms,
    size_t denied_columns) {
  LossEstimate out;
  double info_degradation = 0.0;
  for (const auto& [_, form] : column_forms) {
    out.privacy_loss = std::max(out.privacy_loss, FormWeight(form));
    info_degradation += 1.0 - UtilityWeight(form);
  }
  const double total_cols =
      static_cast<double>(column_forms.size() + denied_columns);
  if (total_cols > 0.0) {
    // Denied columns deliver zero information (full unit of degradation).
    out.information_loss =
        (info_degradation + static_cast<double>(denied_columns)) / total_cols;
  }
  return out;
}

bool LossComputation::Acceptable(const LossEstimate& estimate, const PiqlQuery& query,
                                 double policy_loss_budget) {
  return estimate.information_loss <= query.max_information_loss &&
         estimate.privacy_loss <= policy_loss_budget;
}

}  // namespace source
}  // namespace piye

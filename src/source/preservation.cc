#include "source/preservation.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "perturb/noise.h"

namespace piye {
namespace source {

using policy::DisclosureForm;

const char* BreachClassToString(BreachClass breach) {
  switch (breach) {
    case BreachClass::kNone:
      return "none";
    case BreachClass::kIdentityDisclosure:
      return "identity-disclosure";
    case BreachClass::kAttributeDisclosure:
      return "attribute-disclosure";
    case BreachClass::kAggregateInference:
      return "aggregate-inference";
    case BreachClass::kLinkageAttack:
      return "linkage-attack";
  }
  return "?";
}

const char* TechniqueToString(Technique technique) {
  switch (technique) {
    case Technique::kNone:
      return "none";
    case Technique::kSuppression:
      return "suppression";
    case Technique::kGeneralization:
      return "generalization";
    case Technique::kKAnonymity:
      return "k-anonymity";
    case Technique::kNoiseAddition:
      return "noise-addition";
    case Technique::kRounding:
      return "rounding";
    case Technique::kQuerySetRestriction:
      return "query-set-restriction";
  }
  return "?";
}

namespace {

bool IsNumericColumn(const relational::Schema& schema, size_t i) {
  return schema.column(i).type == relational::ColumnType::kInt64 ||
         schema.column(i).type == relational::ColumnType::kDouble;
}

}  // namespace

Status PreservationModule::ApplyGeneralization(
    relational::Table* table,
    const std::map<std::string, policy::DisclosureForm>& column_forms) const {
  // Coarsen every kRange/kGeneralized column: numeric columns become
  // `generalization_buckets` equi-width ranges, strings become
  // `string_prefix`-character prefixes ("1974-02-06" → "197*"). The table's
  // schema changes coarsened numeric columns to STRING.
  relational::Schema new_schema;
  std::vector<bool> generalize(table->schema().num_columns(), false);
  std::vector<bool> string_generalize(table->schema().num_columns(), false);
  std::vector<double> lo(table->schema().num_columns(), 0.0);
  std::vector<double> width(table->schema().num_columns(), 0.0);
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    const auto& col = table->schema().column(c);
    auto it = column_forms.find(col.name);
    const bool wants_coarsening = it != column_forms.end() &&
                                  (it->second == DisclosureForm::kRange ||
                                   it->second == DisclosureForm::kGeneralized);
    if (wants_coarsening && col.type == relational::ColumnType::kString) {
      string_generalize[c] = true;
      new_schema.AddColumn(col);
      continue;
    }
    const bool coarsen = wants_coarsening && IsNumericColumn(table->schema(), c);
    generalize[c] = coarsen;
    if (coarsen) {
      // Min/max scan over the contiguous typed buffer.
      const relational::ColumnVector& cv = table->col(c);
      const bool is_int = cv.type() == relational::ColumnType::kInt64;
      double mn = 0.0, mx = 0.0;
      bool first = true;
      for (size_t r = 0; r < table->num_rows(); ++r) {
        if (cv.IsNull(r)) continue;
        const double x =
            is_int ? static_cast<double>(cv.IntAt(r)) : cv.RealAt(r);
        if (first) {
          mn = mx = x;
          first = false;
        } else {
          mn = std::min(mn, x);
          mx = std::max(mx, x);
        }
      }
      lo[c] = mn;
      width[c] = (mx - mn) / static_cast<double>(config_.generalization_buckets);
      if (width[c] <= 0.0) width[c] = 1.0;
      new_schema.AddColumn({col.name, relational::ColumnType::kString});
    } else {
      new_schema.AddColumn(col);
    }
  }
  // Rebuild column-by-column: untouched columns copy their buffers whole,
  // coarsened ones are written as fresh STRING columns in one pass.
  relational::Table out;
  const size_t n = table->num_rows();
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    const relational::ColumnVector& cv = table->col(c);
    if (string_generalize[c]) {
      relational::ColumnVector data(relational::ColumnType::kString);
      data.Reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (cv.IsNull(r)) {
          data.AppendNull();
          continue;
        }
        const std::string_view s = cv.StrAt(r);
        if (s.size() > config_.string_prefix) {
          std::string prefixed(s.substr(0, config_.string_prefix));
          prefixed += '*';
          data.AppendStr(prefixed);
        } else {
          data.AppendStr(s);
        }
      }
      out.AddColumn(new_schema.column(c), std::move(data));
    } else if (generalize[c]) {
      const bool is_int = cv.type() == relational::ColumnType::kInt64;
      relational::ColumnVector data(relational::ColumnType::kString);
      data.Reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (cv.IsNull(r)) {
          data.AppendNull();
          continue;
        }
        const double x =
            is_int ? static_cast<double>(cv.IntAt(r)) : cv.RealAt(r);
        double bucket = std::floor((x - lo[c]) / width[c]);
        bucket = std::clamp(
            bucket, 0.0,
            static_cast<double>(config_.generalization_buckets - 1));
        const double b_lo = lo[c] + bucket * width[c];
        data.AppendStr(strings::Format("[%g,%g)", b_lo, b_lo + width[c]));
      }
      out.AddColumn(new_schema.column(c), std::move(data));
    } else {
      out.AddColumn(new_schema.column(c), cv);
    }
  }
  *table = std::move(out);
  return Status::OK();
}

Status PreservationModule::ApplySuppression(
    relational::Table* table,
    const std::map<std::string, policy::DisclosureForm>& column_forms) const {
  // k-anonymity-style suppression over the *coarsened* columns (the
  // quasi-identifiers): rows whose generalized QI combination occurs fewer
  // than k times are dropped. Without any coarsened column there is no QI to
  // protect and suppression is a no-op.
  std::vector<size_t> qi;
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    auto it = column_forms.find(table->schema().column(c).name);
    if (it != column_forms.end() && (it->second == DisclosureForm::kRange ||
                                     it->second == DisclosureForm::kGeneralized)) {
      qi.push_back(c);
    }
  }
  if (qi.empty()) return Status::OK();
  std::map<std::string, size_t> counts;
  std::vector<std::string> keys;
  keys.reserve(table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::string key;
    for (size_t c : qi) {
      key += table->col(c).ValueAt(r).ToDisplayString();
      key += '\x1f';
    }
    ++counts[key];
    keys.push_back(std::move(key));
  }
  // Keep rows of sufficiently large equivalence classes via one gather.
  std::vector<uint32_t> sel;
  sel.reserve(table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (counts[keys[r]] >= config_.k) sel.push_back(static_cast<uint32_t>(r));
  }
  *table = table->Gather(sel);
  return Status::OK();
}

Status PreservationModule::ApplyRounding(
    relational::Table* table,
    const std::map<std::string, policy::DisclosureForm>& forms,
    double loss_budget) const {
  // Precision grows as the budget shrinks: budget 1 → min precision,
  // budget 0 → precision 10.
  const double budget = std::clamp(loss_budget, 0.0, 1.0);
  const double precision =
      config_.min_aggregate_precision * std::pow(100.0, 1.0 - budget);
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    auto it = forms.find(table->schema().column(c).name);
    if (it == forms.end() || it->second != DisclosureForm::kAggregate) continue;
    if (!IsNumericColumn(table->schema(), c)) continue;
    relational::ColumnVector* mc = table->MutableColumn(c);
    const size_t n = table->num_rows();
    if (mc->type() == relational::ColumnType::kInt64) {
      int64_t* vals = mc->mutable_ints();
      for (size_t r = 0; r < n; ++r) {
        if (mc->IsNull(r)) continue;
        vals[r] = static_cast<int64_t>(std::llround(
            perturb::OutputPerturbation::Round(static_cast<double>(vals[r]),
                                               precision)));
      }
    } else {
      double* vals = mc->mutable_reals();
      for (size_t r = 0; r < n; ++r) {
        if (mc->IsNull(r)) continue;
        vals[r] = perturb::OutputPerturbation::Round(vals[r], precision);
      }
    }
  }
  return Status::OK();
}

Status PreservationModule::ApplyNoise(
    relational::Table* table,
    const std::map<std::string, policy::DisclosureForm>& forms, double loss_budget,
    Rng* rng) const {
  const double budget = std::clamp(loss_budget, 0.0, 1.0);
  const double scale = config_.laplace_scale_at_zero_budget * (1.0 - budget);
  if (scale <= 0.0) return Status::OK();
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    auto it = forms.find(table->schema().column(c).name);
    if (it == forms.end() || it->second != DisclosureForm::kAggregate) continue;
    if (!IsNumericColumn(table->schema(), c)) continue;
    relational::ColumnVector* mc = table->MutableColumn(c);
    const size_t n = table->num_rows();
    if (mc->type() == relational::ColumnType::kInt64) {
      int64_t* vals = mc->mutable_ints();
      for (size_t r = 0; r < n; ++r) {
        if (mc->IsNull(r)) continue;
        vals[r] = static_cast<int64_t>(
            std::llround(perturb::OutputPerturbation::LaplaceNoise(
                static_cast<double>(vals[r]), scale, rng)));
      }
    } else {
      double* vals = mc->mutable_reals();
      for (size_t r = 0; r < n; ++r) {
        if (mc->IsNull(r)) continue;
        vals[r] =
            perturb::OutputPerturbation::LaplaceNoise(vals[r], scale, rng);
      }
    }
  }
  return Status::OK();
}

std::vector<Technique> PreservationModule::DefaultTechniques(
    const std::map<std::string, policy::DisclosureForm>& column_forms,
    double loss_budget) const {
  std::vector<Technique> out;
  bool any_coarsen = false, any_aggregate = false, any_row_level = false;
  for (const auto& [_, form] : column_forms) {
    if (form == DisclosureForm::kRange || form == DisclosureForm::kGeneralized) {
      any_coarsen = true;
    }
    if (form == DisclosureForm::kAggregate) any_aggregate = true;
    if (form == DisclosureForm::kExact) any_row_level = true;
  }
  if (any_coarsen) {
    out.push_back(Technique::kGeneralization);
    out.push_back(Technique::kSuppression);
  }
  if (any_aggregate && loss_budget < 1.0) out.push_back(Technique::kRounding);
  if (any_aggregate && loss_budget < 0.25) out.push_back(Technique::kNoiseAddition);
  if (out.empty() && any_row_level) out.push_back(Technique::kNone);
  return out;
}

Result<relational::Table> PreservationModule::Apply(
    relational::Table result,
    const std::map<std::string, policy::DisclosureForm>& column_forms,
    double loss_budget, const std::vector<Technique>& techniques, Rng* rng) const {
  for (Technique t : techniques) {
    switch (t) {
      case Technique::kNone:
      case Technique::kQuerySetRestriction:  // enforced pre-execution
        break;
      case Technique::kGeneralization:
      case Technique::kKAnonymity:
        PIYE_RETURN_NOT_OK(ApplyGeneralization(&result, column_forms));
        break;
      case Technique::kSuppression:
        PIYE_RETURN_NOT_OK(ApplySuppression(&result, column_forms));
        break;
      case Technique::kRounding:
        PIYE_RETURN_NOT_OK(ApplyRounding(&result, column_forms, loss_budget));
        break;
      case Technique::kNoiseAddition:
        PIYE_RETURN_NOT_OK(ApplyNoise(&result, column_forms, loss_budget, rng));
        break;
    }
  }
  return result;
}

}  // namespace source
}  // namespace piye

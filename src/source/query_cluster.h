#ifndef PIYE_SOURCE_QUERY_CLUSTER_H_
#define PIYE_SOURCE_QUERY_CLUSTER_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/sql.h"
#include "source/preservation.h"

namespace piye {
namespace source {

/// The feature vector the Cluster Matching module extracts from a query
/// *without executing it* (Section 4's argued-for alternative (2): "analyze
/// only the features of the query ... to determine the characteristics of
/// the query results").
struct QueryFeatures {
  static constexpr size_t kDims = 8;

  /// [0] aggregate query? [1] #aggregate functions [2] #predicate nodes
  /// [3] returns individual rows? [4] #output columns [5] grouped?
  /// [6] #group-by columns [7] has small LIMIT (<10)?
  std::array<double, kDims> v{};

  static QueryFeatures Extract(const relational::SelectStatement& stmt);

  double DistanceTo(const QueryFeatures& other) const;
};

/// One cluster of queries sharing a breach profile, hence sharing
/// preservation techniques.
struct QueryCluster {
  std::string label;
  QueryFeatures centroid;
  BreachClass breach = BreachClass::kNone;
  std::vector<Technique> techniques;
  size_t support = 0;  ///< number of training exemplars behind the centroid
};

/// The Cluster Repository + Cluster Matching of Figure 2(a): trained from
/// labeled exemplar queries (mined offline from the raw data, per the
/// paper), it maps an incoming rewritten query to the nearest cluster and
/// hands its technique set to the preservation module.
class ClusterStore {
 public:
  /// Adds a labeled training query.
  void AddExemplar(const QueryFeatures& features, BreachClass breach,
                   std::vector<Technique> techniques);

  /// Builds one centroid per breach class from the exemplars (nearest-
  /// centroid classification — adequate for the well-separated feature
  /// space; see also KMeans below for the unsupervised variant).
  void Train();

  /// Nearest cluster, or nullptr when untrained.
  const QueryCluster* Map(const QueryFeatures& features) const;

  const std::vector<QueryCluster>& clusters() const { return clusters_; }
  size_t num_exemplars() const { return exemplars_.size(); }

  /// A store pre-trained on canonical exemplars of the four breach classes.
  static ClusterStore Default();

 private:
  struct Exemplar {
    QueryFeatures features;
    BreachClass breach;
    std::vector<Technique> techniques;
  };

  std::vector<Exemplar> exemplars_;
  std::vector<QueryCluster> clusters_;
};

/// Plain k-means over query features — the unsupervised cluster-generation
/// path ("we need ways to define and measure similar queries"), benchmarked
/// against the labeled nearest-centroid store in bench_cluster.
std::vector<QueryFeatures> KMeansCluster(const std::vector<QueryFeatures>& points,
                                         size_t k, size_t iterations, Rng* rng);

}  // namespace source
}  // namespace piye

#endif  // PIYE_SOURCE_QUERY_CLUSTER_H_

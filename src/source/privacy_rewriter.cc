#include "source/privacy_rewriter.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace piye {
namespace source {

using policy::DisclosureForm;

policy::Disclosure PrivacyRewriter::EffectiveFor(const std::string& column,
                                                 const PiqlQuery& query) const {
  policy::Disclosure d = policies_->EffectiveDisclosure(
      owner_, /*table=*/"*", column, query.purpose, query.requester);
  // RBAC is a further gate: without SELECT permission the form drops to
  // denied regardless of policy.
  if (d.allowed() &&
      !rbac_->IsAuthorized(query.requester, access::Action::kSelect, "*", column)) {
    d.form = DisclosureForm::kDenied;
    d.max_privacy_loss = 0.0;
  }
  return d;
}

Result<PrivacyRewriter::Rewritten> PrivacyRewriter::Rewrite(
    const relational::SelectStatement& stmt, const PiqlQuery& query) const {
  Rewritten out;
  out.stmt.table = stmt.table;
  out.stmt.order_by = stmt.order_by;
  out.stmt.limit = stmt.limit;
  out.stmt.group_by = stmt.group_by;

  relational::ExprPtr policy_condition;

  // The WHERE clause must only touch columns the requester may at least
  // filter on (anything not fully denied).
  if (stmt.where != nullptr) {
    std::set<std::string> where_cols;
    stmt.where->CollectColumns(&where_cols);
    for (const auto& col : where_cols) {
      const policy::Disclosure d = EffectiveFor(col, query);
      if (!d.allowed()) {
        return Status::PermissionDenied(
            "predicate references denied column '" + col + "'");
      }
    }
    out.stmt.where = stmt.where;
  }

  for (const auto& item : stmt.items) {
    if (item.kind == relational::SelectItem::Kind::kStar) {
      return Status::InvalidArgument(
          "privacy rewriting requires an explicit select list ('*' would bypass "
          "column-level policy)");
    }
    const std::string& col = item.column;
    policy::Disclosure d =
        col.empty() ? policy::Disclosure{DisclosureForm::kAggregate, 1.0, nullptr, {}}
                    : EffectiveFor(col, query);
    const bool is_aggregate = item.kind == relational::SelectItem::Kind::kAggregate;
    bool allowed = d.allowed();
    if (allowed && !is_aggregate && d.form == DisclosureForm::kAggregate) {
      // Aggregate-only columns cannot be selected row-level.
      allowed = false;
    }
    if (!allowed) {
      out.denied_columns.push_back(item.OutputName());
      continue;
    }
    out.stmt.items.push_back(item);
    out.column_forms[item.OutputName()] =
        is_aggregate ? DisclosureForm::kAggregate : d.form;
    out.column_budgets[item.OutputName()] = d.max_privacy_loss;
    out.loss_budget = std::min(out.loss_budget, d.max_privacy_loss);
    policy_condition = relational::Expression::And(policy_condition, d.condition);
  }
  if (out.stmt.items.empty()) {
    return Status::PrivacyViolation(
        "policy denies every requested column for requester '" + query.requester +
        "' with purpose '" + query.purpose + "'");
  }
  // Drop group-by columns that did not survive.
  out.stmt.group_by.erase(
      std::remove_if(out.stmt.group_by.begin(), out.stmt.group_by.end(),
                     [&](const std::string& g) {
                       for (const auto& item : out.stmt.items) {
                         if (item.kind == relational::SelectItem::Kind::kColumn &&
                             item.column == g) {
                           return false;
                         }
                       }
                       return true;
                     }),
      out.stmt.group_by.end());
  // Integrate the policies' row conditions (rewrite-then-execute).
  out.stmt.where = relational::Expression::And(out.stmt.where, policy_condition);
  return out;
}

}  // namespace source
}  // namespace piye

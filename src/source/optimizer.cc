#include "source/optimizer.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace source {

Result<PrivacyOptimizer::Plan> PrivacyOptimizer::Choose(
    const relational::SelectStatement& stmt, const relational::Table& base_table,
    const relational::ExprPtr& policy_predicate, size_t sample_size) {
  Plan plan;
  // Estimate the policy predicate's selectivity on a prefix sample.
  if (policy_predicate != nullptr && base_table.num_rows() > 0) {
    const size_t n = std::min(sample_size, base_table.num_rows());
    size_t pass = 0;
    for (size_t r = 0; r < n; ++r) {
      PIYE_ASSIGN_OR_RETURN(
          bool keep, policy_predicate->EvaluatesTrue(base_table.row(r),
                                                     base_table.schema()));
      if (keep) ++pass;
    }
    plan.estimated_policy_selectivity =
        static_cast<double>(pass) / static_cast<double>(n);
  }
  const bool is_aggregate = stmt.HasAggregates();
  const size_t groups = stmt.group_by.empty() ? 1 : 16;  // coarse default estimate

  const double cost_pushed =
      EstimateCost(base_table.num_rows(), plan.estimated_policy_selectivity,
                   /*push=*/true, is_aggregate, /*after=*/true, groups);
  const double cost_post =
      EstimateCost(base_table.num_rows(), plan.estimated_policy_selectivity,
                   /*push=*/false, is_aggregate, /*after=*/true, groups);
  plan.push_policy_filter = cost_pushed <= cost_post;
  plan.perturb_after_aggregate = is_aggregate;
  plan.estimated_cost = std::min(cost_pushed, cost_post);

  plan.steps.push_back(strings::Format("scan(%s) [%zu rows]", stmt.table.c_str(),
                                       base_table.num_rows()));
  if (plan.push_policy_filter && policy_predicate != nullptr) {
    plan.steps.push_back(strings::Format("filter[policy+query] (sel=%.2f)",
                                         plan.estimated_policy_selectivity));
  } else if (stmt.where != nullptr) {
    plan.steps.push_back("filter[query]");
  }
  if (is_aggregate) plan.steps.push_back("aggregate");
  if (!plan.push_policy_filter && policy_predicate != nullptr) {
    plan.steps.push_back("filter[policy, post hoc]");
  }
  plan.steps.push_back(plan.perturb_after_aggregate ? "preserve[output]"
                                                    : "preserve[rows]");
  return plan;
}

double PrivacyOptimizer::EstimateCost(size_t base_rows, double selectivity,
                                      bool push_policy_filter, bool is_aggregate,
                                      bool perturb_after_aggregate,
                                      size_t num_groups) {
  const double n = static_cast<double>(base_rows);
  const double surviving = push_policy_filter ? n * selectivity : n;
  double cost = n;  // scan + filter evaluation
  // Downstream relational work over surviving rows.
  cost += surviving;
  if (!push_policy_filter) cost += surviving;  // post-hoc policy pass
  // Privacy preservation work.
  const double privacy_rows =
      is_aggregate && perturb_after_aggregate ? static_cast<double>(num_groups)
                                              : surviving;
  cost += 2.0 * privacy_rows;  // perturbation is ~2x a row touch
  return cost;
}

}  // namespace source
}  // namespace piye
